package papi

import (
	"testing"
	"testing/quick"
)

func tinyCache(ways int, policy Replacement) CacheConfig {
	return CacheConfig{Name: "tiny", SizeBytes: uint64(ways) * 4 * 64, LineBytes: 64, Ways: ways, Policy: policy}
	// 4 sets.
}

func TestConfigValidate(t *testing.T) {
	if Bridges2L1I().Validate() != nil || Stampede2L1I().Validate() != nil {
		t.Fatal("site configs invalid")
	}
	bad := CacheConfig{SizeBytes: 1000, LineBytes: 64, Ways: 3}
	if bad.Validate() == nil {
		t.Fatal("non-divisible geometry accepted")
	}
	if (CacheConfig{}).Validate() == nil {
		t.Fatal("zero geometry accepted")
	}
}

func TestSets(t *testing.T) {
	if s := Bridges2L1I().Sets(); s != 64 {
		t.Fatalf("Bridges-2 sets = %d", s)
	}
	if s := Stampede2L1I().Sets(); s != 64 {
		t.Fatalf("Stampede2 sets = %d", s)
	}
}

func TestHitsAndMisses(t *testing.T) {
	c := NewCache(tinyCache(2, LRU))
	c.Fetch(0)
	c.Fetch(0)
	c.Fetch(64)
	k := c.Read()
	if k.Accesses != 3 || k.Misses != 2 {
		t.Fatalf("counters %+v", k)
	}
	if k.MissRate() != 2.0/3.0 {
		t.Fatalf("miss rate %v", k.MissRate())
	}
}

func TestLRUEviction(t *testing.T) {
	// 4 sets, 2 ways: lines 0, 4, 8 all map to set 0.
	c := NewCache(tinyCache(2, LRU))
	addr := func(line uint64) uint64 { return line * 64 * 4 } // stay in set 0
	c.Fetch(addr(0))
	c.Fetch(addr(1))
	c.Fetch(addr(0)) // refresh 0: LRU victim is now 1
	c.Fetch(addr(2)) // evicts 1
	c.Fetch(addr(0)) // hit
	k := c.Read()
	if k.Misses != 3 {
		t.Fatalf("misses %d, want 3 (0,1,2 cold; final 0 hits)", k.Misses)
	}
	c.Fetch(addr(1)) // was evicted: miss
	if c.Read().Misses != 4 {
		t.Fatal("evicted line hit")
	}
}

func TestFetchRangeCountsLines(t *testing.T) {
	c := NewCache(Bridges2L1I())
	c.FetchRange(10, 64) // spans two lines (10..73)
	if k := c.Read(); k.Accesses != 2 {
		t.Fatalf("accesses %d, want 2", k.Accesses)
	}
	c.Reset()
	c.FetchRange(0, 4096)
	if k := c.Read(); k.Accesses != 64 || k.Misses != 64 {
		t.Fatalf("range fetch %+v", k)
	}
}

func TestResetClears(t *testing.T) {
	c := NewCache(Bridges2L1I())
	c.Fetch(0)
	c.Reset()
	if k := c.Read(); k.Accesses != 0 || k.Misses != 0 {
		t.Fatal("counters survived reset")
	}
	c.Fetch(0)
	if c.Read().Misses != 1 {
		t.Fatal("cache contents survived reset")
	}
}

func TestWorkingSetFitsNoSteadyMisses(t *testing.T) {
	cfg := Bridges2L1I()
	c := NewCache(cfg)
	// 16 KiB working set in a 32 KiB cache: after the cold pass, no
	// further misses under LRU.
	for pass := 0; pass < 10; pass++ {
		c.FetchRange(0, 16<<10)
	}
	k := c.Read()
	if k.Misses != (16<<10)/64 {
		t.Fatalf("misses %d, want cold misses only (%d)", k.Misses, (16<<10)/64)
	}
}

func TestCyclicOverflowThrashesLRU(t *testing.T) {
	cfg := Bridges2L1I()
	c := NewCache(cfg)
	// 40 KiB cyclic in a 32 KiB LRU cache: every access misses.
	for pass := 0; pass < 3; pass++ {
		c.FetchRange(0, 40<<10)
	}
	k := c.Read()
	if k.Misses != k.Accesses {
		t.Fatalf("LRU cyclic overflow should thrash: %d/%d", k.Misses, k.Accesses)
	}
}

func TestRandomReplacementDegradesGracefully(t *testing.T) {
	cfg := Stampede2L1I() // random policy
	c := NewCache(cfg)
	// Slightly-overflowing cyclic workload: random replacement should
	// hit sometimes, unlike LRU's 100% miss.
	for pass := 0; pass < 20; pass++ {
		c.FetchRange(0, 56<<10)
	}
	k := c.Read()
	if k.Misses == k.Accesses {
		t.Fatal("random replacement thrashed like LRU")
	}
	if k.MissRate() < 0.05 {
		t.Fatalf("miss rate %.3f implausibly low for an overflowing set", k.MissRate())
	}
}

func TestSimulateDeterministic(t *testing.T) {
	m := ExecModel{
		RankCodeBases:  []uint64{0x1000, 0x200000},
		HotBytes:       8 << 10,
		SchedBase:      0x800000,
		SchedBytes:     1 << 10,
		Switches:       100,
		LoopsPerTurn:   2,
		RankExtraBytes: 1 << 10,
	}
	a := Simulate(Stampede2L1I(), m)
	b := Simulate(Stampede2L1I(), m)
	if a != b {
		t.Fatalf("random-policy simulation not reproducible: %+v vs %+v", a, b)
	}
	if a.Accesses == 0 || a.Misses == 0 {
		t.Fatal("degenerate simulation")
	}
}

func TestSimulateEmptyModel(t *testing.T) {
	k := Simulate(Bridges2L1I(), ExecModel{})
	if k.Accesses != 0 {
		t.Fatal("empty model fetched")
	}
}

// Property: misses never exceed accesses, and a shared-base model
// never misses more than a duplicated-base model with the same
// footprint under LRU (sharing can only help when everything else is
// equal).
func TestSharingNeverHurtsEqualFootprintLRU(t *testing.T) {
	f := func(hotKB, schedKB uint8, ranks8 uint8) bool {
		ranks := int(ranks8%6) + 2
		hot := (uint64(hotKB%24) + 1) << 10
		sched := (uint64(schedKB%8) + 1) << 10
		shared := make([]uint64, ranks)
		dup := make([]uint64, ranks)
		for i := range shared {
			shared[i] = 0x40000000
			dup[i] = 0x40000000 + uint64(i)*(1<<24)
		}
		mk := func(bases []uint64) ExecModel {
			return ExecModel{
				RankCodeBases: bases, HotBytes: hot,
				SchedBase: 0x10000000, SchedBytes: sched,
				Switches: 256, LoopsPerTurn: 1,
			}
		}
		cfg := Bridges2L1I()
		s := Simulate(cfg, mk(shared))
		d := Simulate(cfg, mk(dup))
		if s.Misses > s.Accesses || d.Misses > d.Accesses {
			return false
		}
		return s.Misses <= d.Misses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
