// Package papi models the hardware-counter measurement of §4.5: an L1
// instruction cache simulator (set-associative, LRU) fed with synthetic
// instruction-fetch traces of virtual ranks interleaved on one core.
//
// The experiment compares TLSglobals (all ranks fetch from one shared
// copy of the code) with PIEglobals (each rank fetches from its own
// duplicated copy). The paper found contradictory results — PIEglobals
// had 22% fewer L1I misses on Bridges-2 (AMD) while TLSglobals had 15%
// fewer on Stampede2 (Intel) — and drew no strong conclusion. The model
// reproduces the mechanism that makes such flips possible: whether code
// sharing wins depends on how the shared copy's hot lines conflict with
// the runtime scheduler's lines in a given cache geometry, versus the
// larger but differently-placed footprint of per-rank copies.
package papi

import (
	"fmt"

	"provirt/internal/sim"
)

// Replacement selects a cache line replacement policy.
type Replacement int

const (
	// LRU is true least-recently-used replacement.
	LRU Replacement = iota
	// Random is seeded pseudo-random victim selection, approximating
	// the not-quite-LRU policies of real L1I designs; it degrades
	// gracefully near capacity instead of cliff-thrashing.
	Random
)

// CacheConfig is an L1I geometry.
type CacheConfig struct {
	Name      string
	SizeBytes uint64
	LineBytes uint64
	Ways      int
	Policy    Replacement
}

// Sets returns the number of cache sets.
func (c CacheConfig) Sets() uint64 {
	return c.SizeBytes / (c.LineBytes * uint64(c.Ways))
}

// Validate checks the geometry is realizable.
func (c CacheConfig) Validate() error {
	if c.SizeBytes == 0 || c.LineBytes == 0 || c.Ways <= 0 {
		return fmt.Errorf("papi: cache config %+v has zero fields", c)
	}
	if c.SizeBytes%(c.LineBytes*uint64(c.Ways)) != 0 {
		return fmt.Errorf("papi: cache size %d not divisible by line*ways", c.SizeBytes)
	}
	if c.Sets()&(c.Sets()-1) != 0 {
		return fmt.Errorf("papi: set count %d not a power of two", c.Sets())
	}
	return nil
}

// Bridges2L1I approximates the AMD EPYC 7742 (Zen 2) L1 instruction
// cache: 32 KiB, 8-way, 64-byte lines, LRU-like replacement.
func Bridges2L1I() CacheConfig {
	return CacheConfig{Name: "Bridges-2 (AMD EPYC 7742)", SizeBytes: 32 << 10, LineBytes: 64, Ways: 8, Policy: LRU}
}

// Stampede2L1I approximates the Intel Xeon Ice Lake L1 instruction
// cache as a larger, higher-associativity geometry (48 KiB, 12-way,
// 64-byte lines) with randomized replacement: the extra capacity
// absorbs the TLS-inflated shared code that thrashes the AMD geometry,
// while random replacement degrades gracefully instead of cliffing.
func Stampede2L1I() CacheConfig {
	return CacheConfig{Name: "Stampede2 (Intel Xeon Ice Lake)", SizeBytes: 48 << 10, LineBytes: 64, Ways: 12, Policy: Random}
}

// Cache is a set-associative cache with a configurable replacement
// policy.
type Cache struct {
	cfg  CacheConfig
	sets [][]uint64 // per-set line tags; LRU order (front = MRU) under LRU
	rng  *sim.RNG

	accesses uint64
	misses   uint64
}

// NewCache builds a cache; invalid geometry panics (configs are static
// in this codebase).
func NewCache(cfg CacheConfig) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Cache{cfg: cfg, sets: make([][]uint64, cfg.Sets()), rng: sim.NewRNG(0x1cac4e)}
}

// Config returns the geometry.
func (c *Cache) Config() CacheConfig { return c.cfg }

// Fetch performs one instruction fetch at addr.
func (c *Cache) Fetch(addr uint64) {
	c.accesses++
	line := addr / c.cfg.LineBytes
	set := line % c.cfg.Sets()
	tags := c.sets[set]
	for i, t := range tags {
		if t == line {
			if c.cfg.Policy == LRU {
				// Hit: move to MRU.
				copy(tags[1:i+1], tags[:i])
				tags[0] = line
			}
			return
		}
	}
	c.misses++
	if len(tags) < c.cfg.Ways {
		if c.cfg.Policy == LRU {
			// Prepend as MRU.
			tags = append(tags, 0)
			copy(tags[1:], tags)
			tags[0] = line
			c.sets[set] = tags
		} else {
			c.sets[set] = append(tags, line)
		}
		return
	}
	switch c.cfg.Policy {
	case Random:
		tags[c.rng.Intn(len(tags))] = line
	default:
		copy(tags[1:], tags)
		tags[0] = line
	}
}

// FetchRange fetches every line in [base, base+size).
func (c *Cache) FetchRange(base, size uint64) {
	first := base / c.cfg.LineBytes
	last := (base + size - 1) / c.cfg.LineBytes
	for l := first; l <= last; l++ {
		c.Fetch(l * c.cfg.LineBytes)
	}
}

// Counters is a PAPI-style readout.
type Counters struct {
	Accesses uint64
	Misses   uint64
}

// MissRate returns misses/accesses.
func (k Counters) MissRate() float64 {
	if k.Accesses == 0 {
		return 0
	}
	return float64(k.Misses) / float64(k.Accesses)
}

// Read returns the current counters.
func (c *Cache) Read() Counters { return Counters{Accesses: c.accesses, Misses: c.misses} }

// Reset zeroes counters and invalidates the cache.
func (c *Cache) Reset() {
	c.accesses, c.misses = 0, 0
	c.sets = make([][]uint64, c.cfg.Sets())
}

// ExecModel describes the interleaved execution whose fetch stream we
// simulate: several virtual ranks sharing one core, each spinning in a
// hot loop, with the runtime scheduler's code touched at every context
// switch.
type ExecModel struct {
	// RankCodeBases holds each rank's hot-loop base address: identical
	// entries model shared code (TLSglobals); distinct entries model
	// duplicated segments (PIEglobals).
	RankCodeBases []uint64
	// HotBytes is each rank's inner-loop code footprint.
	HotBytes uint64
	// SchedBase and SchedBytes locate the runtime scheduler's hot path,
	// fetched at every context switch.
	SchedBase  uint64
	SchedBytes uint64
	// Switches is the number of round-robin context switches.
	Switches int
	// LoopsPerTurn is how many times a rank traverses its hot loop per
	// scheduling turn.
	LoopsPerTurn int
	// RankExtraBytes is a per-rank code section (boundary handling,
	// rank-specific branches) fetched once per turn. Under shared code
	// each rank's section is a distinct region of the one binary;
	// under duplicated code it lives in the rank's own copy. Either
	// way the sections are distinct lines, so they grow the combined
	// working set with the rank count.
	RankExtraBytes uint64
}

// Simulate runs the fetch stream through a fresh cache of the given
// geometry and returns the counters.
func Simulate(cfg CacheConfig, m ExecModel) Counters {
	c := NewCache(cfg)
	n := len(m.RankCodeBases)
	if n == 0 || m.Switches == 0 {
		return c.Read()
	}
	for s := 0; s < m.Switches; s++ {
		c.FetchRange(m.SchedBase, m.SchedBytes)
		rank := s % n
		base := m.RankCodeBases[rank]
		for l := 0; l < m.LoopsPerTurn; l++ {
			c.FetchRange(base, m.HotBytes)
		}
		if m.RankExtraBytes > 0 {
			// The rank-specific section sits past the hot loop; under
			// shared code the per-rank offset spreads the sections
			// through the binary.
			extraBase := base + m.HotBytes + uint64(rank)*m.RankExtraBytes
			c.FetchRange(extraBase, m.RankExtraBytes)
		}
	}
	return c.Read()
}
