// Package serve turns the batch experiment harness into a long-running
// service: an HTTP/JSON API that accepts declarative scenario.Spec
// documents, executes them on a bounded worker pool, and caches every
// result content-addressed in a resultstore.
//
// The design leans entirely on determinism: a run is a pure function
// of its Spec, so Spec.Hash plus the code version fully identifies the
// output. That makes three things cheap that are usually hard:
//
//   - Caching: a repeated Spec is served from the store byte-for-byte,
//     no simulation executed.
//   - Deduplication: identical in-flight Specs collapse
//     singleflight-style onto one execution; joiners wait for the
//     leader's result instead of queueing duplicate work.
//   - Incremental sweeps: a request is a list of points, each hashed
//     independently, so editing one point of a sweep re-runs exactly
//     the changed point.
//
// Endpoints:
//
//	POST /v1/runs          {"points":[Spec,...]} or {"spec":Spec};
//	                       streams NDJSON — a header line, one line per
//	                       point (in index order, written as soon as
//	                       the point and all before it are done), and a
//	                       trailer. Invalid Specs get a structured 400
//	                       carrying scenario.ValidationError fields.
//	GET  /v1/runs/{hash}   replays a completed run from the store.
//	GET  /v1/experiments   lists the harness experiment registry and
//	                       the workload registry with example Specs.
//
// Concurrency discipline (after the Go optimistic-concurrency study's
// lock-usage findings): the server's mutex guards only the in-flight
// map; simulation, marshaling, and store I/O all happen outside it.
// Total concurrent simulations across all requests are bounded by a
// semaphore threaded through sweep.Runner's admission gate.
package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"provirt/internal/harness"
	"provirt/internal/harness/sweep"
	"provirt/internal/resultstore"
	"provirt/internal/scenario"
)

// Limits on one request: a sweep larger than MaxPoints or a body past
// MaxBodyBytes is rejected up front with a 400/413 instead of queueing
// unbounded work.
const (
	MaxPoints    = 4096
	MaxBodyBytes = 8 << 20
)

// Server executes and caches Spec runs.
type Server struct {
	store   *resultstore.Store
	version string
	workers int

	sem    chan struct{}
	queued atomic.Int64

	// mu guards only inflight; everything else is channels/atomics.
	mu       sync.Mutex
	inflight map[string]*flight
}

// flight is one in-progress point execution; joiners block on done and
// read payload/err after it closes.
type flight struct {
	done    chan struct{}
	payload []byte
	err     error
}

// New returns a server over the store. workers bounds concurrent
// simulations across all requests (<= 0 selects GOMAXPROCS); version
// is reported in responses (pass resultstore.CodeVersion()).
func New(store *resultstore.Store, version string, workers int) *Server {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Server{
		store:    store,
		version:  version,
		workers:  workers,
		sem:      make(chan struct{}, workers),
		inflight: make(map[string]*flight),
	}
}

// Handler mounts the /v1 API. fallback, if non-nil, serves every
// other path — cmd/privbench passes the obs metrics handler so one
// listener serves both the API and /metrics, /progress, /debug/pprof.
func (s *Server) Handler(fallback http.Handler) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/runs", s.handlePostRuns)
	mux.HandleFunc("GET /v1/runs/{hash}", s.handleGetRun)
	mux.HandleFunc("GET /v1/experiments", s.handleExperiments)
	if fallback != nil {
		mux.Handle("/", fallback)
	}
	return mux
}

// --- request/response documents ---

// runRequest is the POST /v1/runs body. "points" is a sweep; "spec"
// is shorthand for a one-point sweep. Exactly one must be set.
type runRequest struct {
	Points []scenario.Spec `json:"points,omitempty"`
	Spec   *scenario.Spec  `json:"spec,omitempty"`
}

// fieldError mirrors scenario.FieldError on the wire.
type fieldError struct {
	Field string `json:"field"`
	Msg   string `json:"msg"`
}

// errorDoc is every non-streaming error body.
type errorDoc struct {
	Error string `json:"error"`
	// Point is the index of the offending sweep point, when one is
	// identifiable.
	Point *int `json:"point,omitempty"`
	// Fields carries scenario.ValidationError's per-field problems.
	Fields []fieldError `json:"fields,omitempty"`
}

// headerLine opens every run stream.
type headerLine struct {
	Run     string `json:"run"`
	Points  int    `json:"points"`
	Version string `json:"version"`
}

// pointLine reports one completed point. Row is the stored payload
// verbatim, so identical Specs yield byte-identical row payloads
// whether computed or cached; Cached is response metadata and lives
// outside Row on purpose.
type pointLine struct {
	Index  int             `json:"index"`
	Hash   string          `json:"hash"`
	Cached bool            `json:"cached"`
	Row    json.RawMessage `json:"row,omitempty"`
	Error  string          `json:"error,omitempty"`
}

// trailerLine closes the stream with the request's cache accounting.
type trailerLine struct {
	Done     bool `json:"done"`
	Cached   int  `json:"cached"`
	Executed int  `json:"executed"`
	Deduped  int  `json:"deduped"`
	Failed   int  `json:"failed"`
}

// runManifest is the stored record of a completed run: the point
// hashes (rows live under their own keys) plus the Specs for
// inspection.
type runManifest struct {
	Points []string          `json:"points"`
	Specs  []json.RawMessage `json:"specs"`
}

func writeError(w http.ResponseWriter, status int, doc errorDoc) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(doc)
}

// --- POST /v1/runs ---

func (s *Server) handlePostRuns(w http.ResponseWriter, r *http.Request) {
	began := time.Now()
	requests.Inc()
	defer func() {
		requestLatency.Observe(uint64(time.Since(began).Microseconds()))
	}()

	var req runRequest
	body := http.MaxBytesReader(w, r.Body, MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, errorDoc{Error: err.Error()})
		return
	}
	points := req.Points
	switch {
	case req.Spec != nil && len(points) > 0:
		writeError(w, http.StatusBadRequest, errorDoc{Error: `"spec" and "points" are mutually exclusive`})
		return
	case req.Spec != nil:
		points = []scenario.Spec{*req.Spec}
	case len(points) == 0:
		writeError(w, http.StatusBadRequest, errorDoc{Error: `body needs "points" (a sweep) or "spec" (one point)`})
		return
	case len(points) > MaxPoints:
		writeError(w, http.StatusBadRequest, errorDoc{Error: fmt.Sprintf("sweep has %d points, limit %d", len(points), MaxPoints)})
		return
	}

	// Validate and hash every point before any work starts, so a bad
	// sweep is rejected whole with the offending point named.
	hashes := make([]string, len(points))
	for i := range points {
		i := i
		if err := points[i].Validate(); err != nil {
			doc := errorDoc{Error: "invalid spec", Point: &i}
			var verr *scenario.ValidationError
			if errors.As(err, &verr) {
				for _, fe := range verr.Errs {
					doc.Fields = append(doc.Fields, fieldError{Field: fe.Field, Msg: fe.Msg})
				}
			} else {
				doc.Error = err.Error()
			}
			writeError(w, http.StatusBadRequest, doc)
			return
		}
		if points[i].Workload == "" {
			// Valid for Config(), but the server has no program to inject.
			writeError(w, http.StatusBadRequest, errorDoc{
				Error: "invalid spec", Point: &i,
				Fields: []fieldError{{Field: "Workload", Msg: "server runs need a registered workload"}},
			})
			return
		}
		h, err := points[i].Hash()
		if err != nil {
			writeError(w, http.StatusBadRequest, errorDoc{Error: err.Error(), Point: &i})
			return
		}
		hashes[i] = h
	}
	runHash := runHashOf(hashes)

	// Resolve each point: cached rows are ready now; the rest either
	// join an in-flight execution or become its leader. Leaders run on
	// the shared bounded pool in the background while this handler
	// streams results in index order.
	type resolution struct {
		cached  bool
		joined  bool
		flight  *flight
		payload []byte
	}
	res := make([]resolution, len(points))
	var leaders []int
	for i, h := range hashes {
		if p, ok := s.store.Get("pt", h); ok {
			cacheHits.Inc()
			res[i] = resolution{cached: true, payload: p}
			continue
		}
		cacheMisses.Inc()
		f, leader := s.claim(h)
		res[i] = resolution{joined: !leader, flight: f}
		if leader {
			leaders = append(leaders, i)
		} else {
			dedupJoins.Inc()
		}
	}
	if len(leaders) > 0 {
		flights := make([]*flight, len(leaders))
		for j, i := range leaders {
			flights[j] = res[i].flight
		}
		go s.runLeaders(points, hashes, flights, leaders)
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	writeLine := func(v any) {
		_ = enc.Encode(v)
		if flusher != nil {
			flusher.Flush()
		}
	}
	writeLine(headerLine{Run: runHash, Points: len(points), Version: s.version})

	var trailer trailerLine
	trailer.Done = true
	for i := range points {
		line := pointLine{Index: i, Hash: hashes[i]}
		switch {
		case res[i].cached:
			trailer.Cached++
			line.Cached = true
			line.Row = res[i].payload
		default:
			f := res[i].flight
			<-f.done
			if res[i].joined {
				trailer.Deduped++
			} else {
				trailer.Executed++
			}
			if f.err != nil {
				trailer.Failed++
				pointErrors.Inc()
				line.Error = f.err.Error()
			} else {
				line.Row = f.payload
			}
		}
		writeLine(line)
	}
	if trailer.Failed == 0 {
		s.putManifest(runHash, hashes, points)
	}
	writeLine(trailer)
}

// claim registers interest in a point hash: the first caller becomes
// the leader (responsible for executing and completing the flight),
// later callers join. Critical section is map access only.
func (s *Server) claim(hash string) (f *flight, leader bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if f, ok := s.inflight[hash]; ok {
		return f, false
	}
	f = &flight{done: make(chan struct{})}
	s.inflight[hash] = f
	return f, true
}

// runLeaders executes this request's leader points on the shared
// bounded pool. The sweep Runner fans them out; its admission gate is
// the server-wide semaphore, so total concurrent simulations across
// every request never exceed the pool size. leaders holds the point
// indices; flights the matching claimed flights, in the same order.
func (s *Server) runLeaders(points []scenario.Spec, hashes []string, flights []*flight, leaders []int) {
	r := sweep.Runner{
		Workers: s.workers,
		Acquire: s.acquireSlot,
		Release: s.releaseSlot,
	}
	_ = r.Run(len(leaders), func(j int) error {
		i := leaders[j]
		f := flights[j]
		f.payload, f.err = s.executePoint(hashes[i], points[i])
		s.mu.Lock()
		delete(s.inflight, hashes[i])
		s.mu.Unlock()
		close(f.done)
		return nil
	})
}

// acquireSlot blocks until a pool slot frees, recording how deep the
// admission queue got (waiters plus runners).
func (s *Server) acquireSlot() {
	queueHighwater.SetMax(s.queued.Add(1))
	s.sem <- struct{}{}
}

func (s *Server) releaseSlot() {
	<-s.sem
	s.queued.Add(-1)
}

// executePoint runs one Spec and stores its row. The leader re-checks
// the store first: a flight that finished between this request's
// store probe and its claim already persisted the row.
func (s *Server) executePoint(hash string, sp scenario.Spec) ([]byte, error) {
	if p, ok := s.store.Get("pt", hash); ok {
		cacheHits.Inc()
		return p, nil
	}
	pointsExecuted.Inc()
	w, err := sp.Run()
	if err != nil {
		return nil, err
	}
	payload, err := json.Marshal(rowFor(&sp, w))
	if err != nil {
		return nil, err
	}
	if err := s.store.Put("pt", hash, payload); err != nil {
		// The row is still good; the next identical request just
		// re-executes. Count it — a persistently failing store turns
		// the cache off silently otherwise.
		storePutErrors.Inc()
	}
	return payload, nil
}

// putManifest persists the run-level record that lets GET
// /v1/runs/{hash} replay the whole sweep.
func (s *Server) putManifest(runHash string, hashes []string, points []scenario.Spec) {
	m := runManifest{Points: hashes, Specs: make([]json.RawMessage, len(points))}
	for i := range points {
		doc, err := json.Marshal(points[i])
		if err != nil {
			return // unreachable for wire-decoded Specs; skip the manifest
		}
		m.Specs[i] = doc
	}
	payload, err := json.Marshal(m)
	if err != nil {
		return
	}
	if err := s.store.Put("run", runHash, payload); err != nil {
		storePutErrors.Inc()
	}
}

// runHashOf derives the run's content address from its point hashes.
// The leading tag keeps run and point addresses from ever colliding
// even though they also live in separate store namespaces.
func runHashOf(pointHashes []string) string {
	h := sha256.New()
	h.Write([]byte("provirt-run 1\n"))
	for _, p := range pointHashes {
		h.Write([]byte(p))
		h.Write([]byte("\n"))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// --- GET /v1/runs/{hash} ---

func (s *Server) handleGetRun(w http.ResponseWriter, r *http.Request) {
	requests.Inc()
	hash := r.PathValue("hash")
	payload, ok := s.store.Get("run", hash)
	if !ok {
		writeError(w, http.StatusNotFound, errorDoc{Error: "unknown run (not computed under this code version, or never completed)"})
		return
	}
	var m runManifest
	if err := json.Unmarshal(payload, &m); err != nil {
		writeError(w, http.StatusInternalServerError, errorDoc{Error: "stored manifest unreadable"})
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	_ = enc.Encode(headerLine{Run: hash, Points: len(m.Points), Version: s.version})
	trailer := trailerLine{Done: true}
	for i, ph := range m.Points {
		line := pointLine{Index: i, Hash: ph, Cached: true}
		if row, ok := s.store.Get("pt", ph); ok {
			cacheHits.Inc()
			trailer.Cached++
			line.Row = row
		} else {
			// The point row was lost (corrupt file); the run is listed
			// but this point must be re-POSTed.
			trailer.Failed++
			line.Cached = false
			line.Error = "row missing from store; re-POST the spec to recompute"
		}
		_ = enc.Encode(line)
	}
	_ = enc.Encode(trailer)
}

// --- GET /v1/experiments ---

// experimentDoc describes one harness registry entry.
type experimentDoc struct {
	Name        string   `json:"name"`
	Aliases     []string `json:"aliases,omitempty"`
	Description string   `json:"description"`
	Flags       []string `json:"flags,omitempty"`
	Traceable   bool     `json:"traceable,omitempty"`
	TraceKeys   []string `json:"trace_keys,omitempty"`
}

// workloadDoc describes one registered workload plus a ready-to-POST
// example Spec.
type workloadDoc struct {
	Name        string        `json:"name"`
	Description string        `json:"description"`
	DefaultSpec scenario.Spec `json:"default_spec"`
}

func (s *Server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	requests.Inc()
	var out struct {
		Version     string          `json:"version"`
		Experiments []experimentDoc `json:"experiments"`
		Workloads   []workloadDoc   `json:"workloads"`
	}
	out.Version = s.version
	for _, e := range harness.Experiments() {
		out.Experiments = append(out.Experiments, experimentDoc{
			Name: e.Name, Aliases: e.Aliases, Description: e.Description,
			Flags: e.Flags, Traceable: e.Traceable, TraceKeys: e.TraceKeys,
		})
	}
	for _, wl := range scenario.Workloads() {
		out.Workloads = append(out.Workloads, workloadDoc{
			Name: wl.Name, Description: wl.Description, DefaultSpec: scenario.DefaultSpec(wl.Name),
		})
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(out)
}
