package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"provirt/internal/obs"
	"provirt/internal/resultstore"
	"provirt/internal/scenario"
)

// newTestServer boots a server over a fresh store with obs installed.
func newTestServer(t *testing.T, workers int) (*Server, *httptest.Server) {
	t.Helper()
	reg := obs.NewRegistry()
	EnableObs(reg)
	t.Cleanup(func() { EnableObs(nil) })
	store, err := resultstore.Open(t.TempDir(), "test", 0)
	if err != nil {
		t.Fatal(err)
	}
	s := New(store, "test", workers)
	ts := httptest.NewServer(s.Handler(nil))
	t.Cleanup(ts.Close)
	return s, ts
}

// tinySpec is the fastest runnable point: the empty workload
// (init/finalize only) at a handful of VPs.
func tinySpec(vps int) scenario.Spec {
	sp := scenario.DefaultSpec("empty")
	sp.VPs = vps
	return sp
}

func postRuns(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	doc, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/runs", "application/json", bytes.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// parseStream splits an NDJSON response into header, point lines, and
// trailer, checking the framing invariants along the way.
func parseStream(t *testing.T, data []byte) (headerLine, []pointLine, trailerLine) {
	t.Helper()
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var lines []json.RawMessage
	for sc.Scan() {
		lines = append(lines, append(json.RawMessage(nil), sc.Bytes()...))
	}
	if len(lines) < 2 {
		t.Fatalf("stream has %d lines, want >= 2: %s", len(lines), data)
	}
	var hdr headerLine
	if err := json.Unmarshal(lines[0], &hdr); err != nil {
		t.Fatalf("header: %v in %s", err, lines[0])
	}
	var trailer trailerLine
	if err := json.Unmarshal(lines[len(lines)-1], &trailer); err != nil || !trailer.Done {
		t.Fatalf("trailer: err=%v done=%v in %s", err, trailer.Done, lines[len(lines)-1])
	}
	var points []pointLine
	for i, raw := range lines[1 : len(lines)-1] {
		var p pointLine
		if err := json.Unmarshal(raw, &p); err != nil {
			t.Fatalf("point: %v in %s", err, raw)
		}
		if p.Index != i {
			t.Fatalf("point %d arrived at position %d: stream must be in index order", p.Index, i)
		}
		points = append(points, p)
	}
	if len(points) != hdr.Points {
		t.Fatalf("header promises %d points, stream has %d", hdr.Points, len(points))
	}
	return hdr, points, trailer
}

// The headline tentpole contract: the same Spec POSTed twice returns
// byte-identical row payloads, the second served from cache — hit
// counter up, executed counter unchanged.
func TestSecondPostIsByteIdenticalCacheHit(t *testing.T) {
	_, ts := newTestServer(t, 2)
	body := map[string]any{"points": []scenario.Spec{tinySpec(4)}}

	resp, data := postRuns(t, ts.URL, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first POST: %d %s", resp.StatusCode, data)
	}
	_, pts1, tr1 := parseStream(t, data)
	if tr1.Executed != 1 || tr1.Cached != 0 || pts1[0].Cached {
		t.Fatalf("first POST should execute: %+v", tr1)
	}
	if len(pts1[0].Row) == 0 {
		t.Fatal("first POST returned no row")
	}
	executedAfterFirst := PointsExecuted()
	hitsAfterFirst := CacheHits()

	resp, data = postRuns(t, ts.URL, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("second POST: %d %s", resp.StatusCode, data)
	}
	_, pts2, tr2 := parseStream(t, data)
	if tr2.Cached != 1 || tr2.Executed != 0 || !pts2[0].Cached {
		t.Fatalf("second POST should be a cache hit: %+v", tr2)
	}
	if !bytes.Equal(pts1[0].Row, pts2[0].Row) {
		t.Fatalf("row payloads differ:\n first=%s\nsecond=%s", pts1[0].Row, pts2[0].Row)
	}
	if PointsExecuted() != executedAfterFirst {
		t.Fatalf("second POST executed a simulation: %d -> %d", executedAfterFirst, PointsExecuted())
	}
	if CacheHits() <= hitsAfterFirst {
		t.Fatal("cache hit counter did not increment")
	}

	var row Row
	if err := json.Unmarshal(pts1[0].Row, &row); err != nil {
		t.Fatalf("row payload not a Row: %v", err)
	}
	if row.Workload != "empty" || row.VPs != 4 || row.FinishNs <= 0 {
		t.Fatalf("implausible row: %+v", row)
	}
}

// N concurrent identical POSTs collapse onto one execution.
func TestConcurrentIdenticalPostsExecuteOnce(t *testing.T) {
	_, ts := newTestServer(t, 4)
	body, _ := json.Marshal(map[string]any{"points": []scenario.Spec{tinySpec(6)}})

	const n = 8
	payloads := make([][]byte, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for g := 0; g < n; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/runs", "application/json", bytes.NewReader(body))
			if err != nil {
				errs[g] = err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs[g] = fmt.Errorf("status %d", resp.StatusCode)
				return
			}
			payloads[g], errs[g] = io.ReadAll(resp.Body)
		}()
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", g, err)
		}
	}
	if got := PointsExecuted(); got != 1 {
		t.Fatalf("%d concurrent identical POSTs executed %d simulations, want 1", n, got)
	}
	// Every response carries the same row bytes, whether it led,
	// joined, or hit the cache.
	_, pts0, _ := parseStream(t, payloads[0])
	for g := 1; g < n; g++ {
		_, pts, _ := parseStream(t, payloads[g])
		if !bytes.Equal(pts0[0].Row, pts[0].Row) {
			t.Fatalf("request %d row differs from request 0", g)
		}
	}
	if CacheHits()+DedupJoins() < n-1 {
		t.Fatalf("hits=%d joins=%d: the other %d requests neither hit nor joined",
			CacheHits(), DedupJoins(), n-1)
	}
}

// Editing a sweep re-runs only the changed point.
func TestEditedSweepRerunsOnlyChangedPoint(t *testing.T) {
	_, ts := newTestServer(t, 2)
	a, b := tinySpec(4), tinySpec(8)

	resp, data := postRuns(t, ts.URL, map[string]any{"points": []scenario.Spec{a}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST [A]: %d %s", resp.StatusCode, data)
	}
	if got := PointsExecuted(); got != 1 {
		t.Fatalf("POST [A] executed %d, want 1", got)
	}

	resp, data = postRuns(t, ts.URL, map[string]any{"points": []scenario.Spec{a, b}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST [A,B]: %d %s", resp.StatusCode, data)
	}
	_, pts, tr := parseStream(t, data)
	if got := PointsExecuted(); got != 2 {
		t.Fatalf("POST [A,B] executed %d total, want 2 (only B is new)", got)
	}
	if !pts[0].Cached || pts[1].Cached {
		t.Fatalf("want A cached and B executed, got A.cached=%v B.cached=%v", pts[0].Cached, pts[1].Cached)
	}
	if tr.Cached != 1 || tr.Executed != 1 {
		t.Fatalf("trailer %+v, want cached=1 executed=1", tr)
	}
}

func TestValidationErrorsAreStructured400s(t *testing.T) {
	_, ts := newTestServer(t, 1)
	bad := tinySpec(4)
	bad.VPs = -3
	resp, data := postRuns(t, ts.URL, map[string]any{"points": []scenario.Spec{tinySpec(4), bad}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400: %s", resp.StatusCode, data)
	}
	var doc errorDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("400 body not JSON: %v in %s", err, data)
	}
	if doc.Point == nil || *doc.Point != 1 {
		t.Fatalf("400 should name point 1: %+v", doc)
	}
	found := false
	for _, f := range doc.Fields {
		if f.Field == "VPs" && f.Msg != "" {
			found = true
		}
	}
	if !found {
		t.Fatalf("400 fields missing VPs: %+v", doc.Fields)
	}
	if PointsExecuted() != 0 {
		t.Fatal("invalid sweep still executed points")
	}
}

func TestUnknownFieldIs400(t *testing.T) {
	_, ts := newTestServer(t, 1)
	body := `{"points":[{"workload":"empty","vps":4,"virtual_processors":4}]}`
	resp, err := http.Post(ts.URL+"/v1/runs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
}

func TestEmptyAndAmbiguousBodiesAre400(t *testing.T) {
	_, ts := newTestServer(t, 1)
	for _, body := range []string{
		`{}`,
		`{"points":[],"spec":null}`,
		fmt.Sprintf(`{"spec":{"workload":"empty","vps":2},"points":[{"workload":"empty","vps":2}]}`),
	} {
		resp, err := http.Post(ts.URL+"/v1/runs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("body %s: status %d, want 400", body, resp.StatusCode)
		}
	}
}

func TestSpecShorthand(t *testing.T) {
	_, ts := newTestServer(t, 1)
	resp, data := postRuns(t, ts.URL, map[string]any{"spec": tinySpec(2)})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	_, pts, _ := parseStream(t, data)
	if len(pts) != 1 || len(pts[0].Row) == 0 {
		t.Fatalf("shorthand spec did not produce one row: %+v", pts)
	}
}

func TestGetRunReplaysCompletedSweep(t *testing.T) {
	_, ts := newTestServer(t, 2)
	resp, data := postRuns(t, ts.URL, map[string]any{"points": []scenario.Spec{tinySpec(4), tinySpec(8)}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST: %d %s", resp.StatusCode, data)
	}
	hdr, pts, _ := parseStream(t, data)
	if hdr.Run == "" {
		t.Fatal("no run hash in header")
	}

	resp2, err := http.Get(ts.URL + "/v1/runs/" + hdr.Run)
	if err != nil {
		t.Fatal(err)
	}
	replay, err := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("GET run: %d %s", resp2.StatusCode, replay)
	}
	hdr2, pts2, tr2 := parseStream(t, replay)
	if hdr2.Run != hdr.Run || len(pts2) != len(pts) {
		t.Fatalf("replay mismatch: %+v vs %+v", hdr2, hdr)
	}
	for i := range pts {
		if !pts2[i].Cached {
			t.Fatalf("replay point %d not cached", i)
		}
		if !bytes.Equal(pts[i].Row, pts2[i].Row) {
			t.Fatalf("replay point %d rows differ", i)
		}
	}
	if tr2.Cached != len(pts) || tr2.Executed != 0 {
		t.Fatalf("replay trailer %+v", tr2)
	}

	resp3, err := http.Get(ts.URL + "/v1/runs/deadbeef")
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown run: %d, want 404", resp3.StatusCode)
	}
}

func TestExperimentsEndpointListsRegistries(t *testing.T) {
	_, ts := newTestServer(t, 1)
	resp, err := http.Get(ts.URL + "/v1/experiments")
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var doc struct {
		Version     string          `json:"version"`
		Experiments []experimentDoc `json:"experiments"`
		Workloads   []workloadDoc   `json:"workloads"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Version != "test" || len(doc.Experiments) == 0 || len(doc.Workloads) == 0 {
		t.Fatalf("thin registry listing: version=%q experiments=%d workloads=%d",
			doc.Version, len(doc.Experiments), len(doc.Workloads))
	}
	// Every advertised example Spec must be POSTable: valid and
	// declarative (hashing it exercises the canonical encoder).
	for _, wl := range doc.Workloads {
		if err := wl.DefaultSpec.Validate(); err != nil {
			t.Errorf("workload %s: default spec invalid: %v", wl.Name, err)
		}
		if _, err := wl.DefaultSpec.Hash(); err != nil {
			t.Errorf("workload %s: default spec unhashable: %v", wl.Name, err)
		}
	}
}

// Workload is required for server runs even though Validate alone
// accepts its absence (Config-only Specs exist for other callers).
func TestMissingWorkloadIs400(t *testing.T) {
	_, ts := newTestServer(t, 1)
	resp, err := http.Post(ts.URL+"/v1/runs", "application/json",
		strings.NewReader(`{"points":[{"vps":4}]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
}
