package serve

import (
	"provirt/internal/obs"
	"provirt/internal/resultstore"
)

// Package-level instruments, nil (no-op) by default per the obs
// discipline. The server is fully functional without them.
var (
	requests       *obs.Counter
	cacheHits      *obs.Counter
	cacheMisses    *obs.Counter
	dedupJoins     *obs.Counter
	pointsExecuted *obs.Counter
	pointErrors    *obs.Counter
	storePutErrors *obs.Counter
	queueHighwater *obs.Gauge
	requestLatency *obs.Histogram
)

// EnableObs registers the server's instruments in r (and the result
// store's, since the two always deploy together); EnableObs(nil)
// restores the no-op state. Call before serving traffic —
// installation is not synchronized with concurrent requests.
func EnableObs(r *obs.Registry) {
	resultstore.EnableObs(r)
	if r == nil {
		requests, cacheHits, cacheMisses = nil, nil, nil
		dedupJoins, pointsExecuted, pointErrors, storePutErrors = nil, nil, nil, nil
		queueHighwater, requestLatency = nil, nil
		return
	}
	requests = r.Counter("serve_requests_total",
		"API requests received across all /v1 endpoints")
	cacheHits = r.Counter("serve_cache_hits_total",
		"points answered from the result store without executing")
	cacheMisses = r.Counter("serve_cache_misses_total",
		"points not found in the result store on arrival")
	dedupJoins = r.Counter("serve_dedup_joins_total",
		"points that joined an identical in-flight execution instead of starting one")
	pointsExecuted = r.Counter("serve_points_executed_total",
		"simulations actually executed (misses that were not deduped)")
	pointErrors = r.Counter("serve_point_errors_total",
		"point executions that returned an error")
	storePutErrors = r.Counter("serve_store_put_errors_total",
		"results computed but not persisted (store write failed)")
	queueHighwater = r.Gauge("serve_queue_depth_highwater",
		"deepest the execution admission queue has been (waiters plus runners)")
	requestLatency = r.Histogram("serve_request_latency_us",
		"wall time to serve POST /v1/runs, microseconds",
		obs.ExpBuckets(100, 4, 12), obs.Volatile())
}

// Accessors for tests and launchers reporting cache effectiveness
// without scraping the registry.
func CacheHits() uint64      { return cacheHits.Value() }
func CacheMisses() uint64    { return cacheMisses.Value() }
func DedupJoins() uint64     { return dedupJoins.Value() }
func PointsExecuted() uint64 { return pointsExecuted.Value() }
