package serve

import (
	"provirt/internal/ampi"
	"provirt/internal/scenario"
)

// Row is the stored result of one executed point: the same world-level
// aggregates the batch experiments report, in a stable wire shape. A
// Row is marshaled once at execution time and served verbatim ever
// after, so its JSON — not this struct — is the compatibility surface.
type Row struct {
	Workload string `json:"workload"`
	Method   string `json:"method"`
	VPs      int    `json:"vps"`
	Nodes    int    `json:"nodes"`

	// SetupNs is the virtual time privatization setup completed;
	// FinishNs the engine clock when the world went idle. Both are
	// simulated nanoseconds — deterministic, never host time.
	SetupNs  int64 `json:"setup_ns"`
	FinishNs int64 `json:"finish_ns"`

	Migrations         int    `json:"migrations"`
	MigratedBytes      uint64 `json:"migrated_bytes"`
	MigratedDeltaBytes uint64 `json:"migrated_delta_bytes"`
	SkippedBalances    int    `json:"skipped_balances"`
	Checkpoints        int    `json:"checkpoints"`
}

func rowFor(sp *scenario.Spec, w *ampi.World) Row {
	return Row{
		Workload:           sp.Workload,
		Method:             sp.Method.String(),
		VPs:                sp.VPs,
		Nodes:              sp.Machine.Nodes,
		SetupNs:            int64(w.SetupDone),
		FinishNs:           int64(w.Cluster.Engine.Now()),
		Migrations:         w.Migrations,
		MigratedBytes:      w.MigratedBytes,
		MigratedDeltaBytes: w.MigratedDeltaBytes,
		SkippedBalances:    w.SkippedBalances,
		Checkpoints:        w.Checkpoints,
	}
}
