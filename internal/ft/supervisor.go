package ft

import (
	"errors"
	"fmt"

	"provirt/internal/ampi"
	"provirt/internal/lb"
	"provirt/internal/machine"
	"provirt/internal/sim"
)

// RecoveryMode selects what the supervisor does with a failed node.
type RecoveryMode int

const (
	// Spare replaces the failed node with an identical spare: the job
	// restarts on a same-shape machine.
	Spare RecoveryMode = iota
	// Shrink restarts the job on the surviving nodes only, remapping
	// the displaced ranks onto the remaining PEs with GreedyRefineLB —
	// the malleable-job recovery virtualized ranks make possible
	// (§2.1): the rank count never changes, only where ranks live.
	Shrink
	// Expand recovers bigger: the failed node is replaced by a spare
	// and the restart machine additionally grows by one node, with
	// GreedyRefineLB rebalancing onto the arrivals — the "make up lost
	// time with more hardware" policy elastic clouds allow.
	Expand
)

// String names the mode ("spare", "shrink", "expand").
func (m RecoveryMode) String() string {
	switch m {
	case Spare:
		return "spare"
	case Shrink:
		return "shrink"
	case Expand:
		return "expand"
	default:
		return fmt.Sprintf("unknown(%d)", int(m))
	}
}

// ParseRecoveryMode inverts String for the named modes.
func ParseRecoveryMode(s string) (RecoveryMode, error) {
	switch s {
	case "spare":
		return Spare, nil
	case "shrink":
		return Shrink, nil
	case "expand":
		return Expand, nil
	default:
		return 0, fmt.Errorf("ft: unknown recovery mode %q", s)
	}
}

// DefaultMaxRestarts bounds recovery attempts when Job.MaxRestarts is
// unset.
const DefaultMaxRestarts = 8

// Job describes a supervised run: the configuration and program to
// execute, the fault plan to inject, and the recovery policy to apply
// when a node crash kills an attempt.
type Job struct {
	// Config is the job configuration; set Config.Checkpoint so
	// CheckpointIfDue actually snapshots, or crashes lose all progress.
	Config ampi.Config
	// Program builds a fresh program for each attempt. Worlds cannot be
	// re-run, so the supervisor needs a factory rather than an instance;
	// the returned program's closures may share state across attempts
	// (e.g. a finals slice).
	Program func() *ampi.Program
	// Plan is the fault schedule, in absolute virtual time from the
	// original job start. The supervisor shifts it across restarts.
	Plan Plan
	// Recovery selects Spare (default) or Shrink handling of crashes.
	Recovery RecoveryMode
	// MaxRestarts bounds recovery attempts; <= 0 means
	// DefaultMaxRestarts.
	MaxRestarts int
}

// RecoveryRecord describes one recovery the supervisor performed.
type RecoveryRecord struct {
	// Attempt is the 1-based attempt that crashed.
	Attempt int
	// Node is the node that failed, CrashAt the virtual time it died
	// (in the crashed attempt's clock).
	Node    int
	CrashAt sim.Time
	// Rework is the work the crash threw away: time from the snapshot
	// the restart used back to the crash (the full run time when no
	// snapshot existed yet).
	Rework sim.Time
	// Downtime is what the restart itself cost: the restarted attempt's
	// virtual time until its slowest rank was restored and running
	// (setup for a from-scratch restart).
	Downtime sim.Time
	// RestoredBytes is the snapshot volume the restart read back.
	RestoredBytes uint64
	// Shrunk reports whether this recovery dropped the failed node
	// instead of using a spare; Expanded whether it grew the machine
	// past the original shape.
	Shrunk   bool
	Expanded bool
}

// Report summarizes a supervised run.
type Report struct {
	// World is the attempt that ran to completion.
	World *ampi.World
	// Attempts counts worlds started (1 = no failures).
	Attempts int
	// Recoveries has one record per crash the supervisor recovered
	// from.
	Recoveries []RecoveryRecord
	// TotalTime sums virtual time across all attempts — the job's
	// effective time-to-solution including lost work and restarts.
	TotalTime sim.Time
	// Checkpoints counts snapshots taken across all attempts.
	Checkpoints int
}

// MeanRecovery is the mean of Rework+Downtime over recoveries (0 if
// none) — the average price of one crash.
func (r *Report) MeanRecovery() sim.Time {
	if len(r.Recoveries) == 0 {
		return 0
	}
	var total sim.Time
	for _, rec := range r.Recoveries {
		total += rec.Rework + rec.Downtime
	}
	return total / sim.Time(len(r.Recoveries))
}

// Run drives a job to completion under supervision: it arms the fault
// plan, runs the world, and on a node failure restarts from the last
// checkpoint — onto a spare, or shrunk onto the survivors — up to
// MaxRestarts times. A crash before any checkpoint restarts the job
// from scratch. With an empty plan Run adds nothing to the run: it
// builds and runs the world exactly as an unsupervised caller would, so
// fault-free supervised runs are bit-identical to bare ones.
//
// Run returns the report alongside any error; on error the report
// covers the attempts made so far.
func Run(job Job) (*Report, error) {
	if job.Program == nil {
		return nil, errors.New("ft: job needs a program factory")
	}
	cfg := job.Config
	maxRestarts := job.MaxRestarts
	if maxRestarts <= 0 {
		maxRestarts = DefaultMaxRestarts
	}
	plan := job.Plan
	rep := &Report{}
	var lastCk *ampi.Checkpoint
	var pending *RecoveryRecord
	for restarts := 0; ; restarts++ {
		var w *ampi.World
		var err error
		if lastCk == nil {
			w, err = ampi.NewWorld(cfg, job.Program())
		} else {
			w, err = ampi.NewWorldFromCheckpoint(cfg, job.Program(), lastCk)
		}
		if err != nil {
			return rep, err
		}
		if err := plan.Arm(w); err != nil {
			return rep, err
		}
		runErr := w.Run()
		rep.Attempts++
		rep.Checkpoints += w.Checkpoints
		if pending != nil {
			pending.Downtime = w.RestoreDone
			if pending.Downtime == 0 {
				pending.Downtime = w.SetupDone
			}
			pending.RestoredBytes = w.RestoredBytes
			metrics.restoredBytes.Add(pending.RestoredBytes)
			pending = nil
		}
		if runErr == nil {
			rep.TotalTime += w.Time()
			rep.World = w
			return rep, nil
		}
		var nf *ampi.NodeFailure
		if !errors.As(runErr, &nf) {
			// Not a node failure: application or runtime bug, nothing a
			// restart would fix.
			rep.TotalTime += w.Time()
			return rep, runErr
		}
		// The crashed attempt consumed virtual time up to the crash,
		// even when the PE clocks lag it (a crash during startup): that
		// is the time its faults must be shifted by and the time the
		// attempt charges to the job.
		elapsed := w.Time()
		if nf.At > elapsed {
			elapsed = nf.At
		}
		rep.TotalTime += elapsed
		if restarts >= maxRestarts {
			return rep, fmt.Errorf("ft: job still failing after %d restart(s): %w", restarts, runErr)
		}
		if ck := w.LastCheckpoint(); ck != nil {
			lastCk = ck
		}
		rec := RecoveryRecord{Attempt: rep.Attempts, Node: nf.Node, CrashAt: nf.At}
		if lastCk != nil {
			rec.Rework = nf.At - lastCk.Taken
			if rec.Rework < 0 {
				rec.Rework = 0
			}
		} else {
			// No snapshot yet: the whole attempt is rework.
			rec.Rework = nf.At
		}
		plan = plan.Shift(elapsed)
		switch job.Recovery {
		case Shrink:
			if cfg.Machine.Nodes <= 1 {
				return rep, fmt.Errorf("ft: cannot shrink below one node: %w", runErr)
			}
			placement, perr := shrinkPlacement(w, cfg.Machine, nf.Node)
			if perr != nil {
				return rep, fmt.Errorf("ft: shrink recovery: %w", perr)
			}
			cfg.Machine.Nodes--
			cfg.Placement = placement
			rec.Shrunk = true
		case Expand:
			placement, perr := expandPlacement(w, cfg.Machine, 1)
			if perr != nil {
				return rep, fmt.Errorf("ft: expand recovery: %w", perr)
			}
			cfg.Machine.Nodes++
			cfg.Placement = placement
			rec.Expanded = true
		}
		if lastCk != nil {
			// Tell the restore which node's in-memory snapshot copies
			// died with the crash (buddy checkpoints read the surviving
			// copy; filesystem snapshots ignore this).
			lastCk.LostNode = nf.Node
		}
		metrics.recoveries.Inc()
		if rec.Shrunk {
			metrics.shrinks.Inc()
		}
		metrics.reworkNS.Add(uint64(rec.Rework))
		rep.Recoveries = append(rep.Recoveries, rec)
		pending = &rep.Recoveries[len(rep.Recoveries)-1]
	}
}

// shrinkPlacement computes where every rank goes when the failed node
// leaves: surviving ranks keep their PE (with ids above the failed node
// shifted down), and ranks displaced from the dead node are remapped by
// GreedyRefineLB onto the least-loaded survivors.
func shrinkPlacement(w *ampi.World, m machine.Config, failed int) ([]int, error) {
	perNode := m.ProcsPerNode * m.PEsPerProc
	newPEs := (m.Nodes - 1) * perNode
	loads := w.RankLoads()
	for i := range loads {
		node := loads[i].PE / perNode
		switch {
		case node == failed:
			loads[i].PE = -1 // displaced: this PE no longer exists
		case node > failed:
			loads[i].PE -= perNode
		}
	}
	assign := lb.GreedyRefineLB{}.Rebalance(loads, newPEs)
	if err := lb.Validate(loads, newPEs, assign); err != nil {
		return nil, err
	}
	return assign, nil
}

// expandPlacement computes where every rank goes when grow nodes join:
// ranks keep their PEs (a spare replaces any dead node under identical
// ids) and GreedyRefineLB donates work onto the arrivals' PEs only.
func expandPlacement(w *ampi.World, m machine.Config, grow int) ([]int, error) {
	perNode := m.ProcsPerNode * m.PEsPerProc
	oldPEs := m.Nodes * perNode
	newPEs := (m.Nodes + grow) * perNode
	arrivals := make([]int, 0, newPEs-oldPEs)
	for pe := oldPEs; pe < newPEs; pe++ {
		arrivals = append(arrivals, pe)
	}
	loads := w.RankLoads()
	assign := lb.GreedyRefineLB{Expand: arrivals}.Rebalance(loads, newPEs)
	if err := lb.Validate(loads, newPEs, assign); err != nil {
		return nil, err
	}
	moves := 0
	for i, pe := range assign {
		if pe != loads[i].PE {
			moves++
		}
	}
	metrics.rebalanceMoves.Add(uint64(moves))
	return assign, nil
}
