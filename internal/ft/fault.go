// Package ft is the resilience subsystem: deterministic fault
// injection, supervised restart and shrink recovery, and
// checkpoint-policy math (Young/Daly optimal intervals).
//
// Faults are data, not randomness at run time: a Plan is a list of
// fault records — node crashes, transient link-degradation windows,
// straggler PEs — compiled once (possibly from a seeded MTBF process)
// and then armed onto a world. Runs stay pure functions of their
// inputs, so a run with faults is exactly as reproducible as one
// without, and sweeps over fault scenarios parallelize byte-identically
// (the determinism contract in DESIGN.md §9).
package ft

import (
	"fmt"
	"math"

	"provirt/internal/ampi"
	"provirt/internal/sim"
	"provirt/internal/trace"
	"provirt/internal/ult"
)

// FaultKind classifies an injected fault.
type FaultKind int

const (
	// Crash is a hard fail-stop node failure at a point in time.
	Crash FaultKind = iota
	// LinkDegrade multiplies network transfer times by Factor for
	// transfers departing inside [At, Until).
	LinkDegrade
	// Straggler dilates one PE's compute by Factor inside [At, Until)
	// (thermal throttling, a noisy neighbor, a failing DIMM).
	Straggler
)

// String names the kind ("crash", "link-degrade", "straggler").
func (k FaultKind) String() string {
	switch k {
	case Crash:
		return "crash"
	case LinkDegrade:
		return "link-degrade"
	case Straggler:
		return "straggler"
	default:
		return fmt.Sprintf("FaultKind(%d)", int(k))
	}
}

// Fault is one injected fault.
type Fault struct {
	Kind FaultKind
	// At is when the fault strikes (Crash) or the window opens
	// (LinkDegrade, Straggler).
	At sim.Time
	// Until closes the window for LinkDegrade and Straggler.
	Until sim.Time
	// Node is the crash target.
	Node int
	// PE is the straggling PE.
	PE int
	// Factor is the slowdown multiplier (>= 1) for window faults.
	Factor float64
}

// Plan is a deterministic fault schedule. The zero value injects
// nothing.
type Plan struct {
	// Seed records the generator seed a sampled plan was built from
	// (zero for hand-written plans); it is carried for provenance only.
	Seed uint64
	// Faults fire in the order given; times are absolute virtual time.
	Faults []Fault
}

// Shift returns the plan as seen by a job restarted after elapsed
// virtual time was already consumed by earlier attempts: faults that
// already struck are dropped, later ones move earlier, and windows
// straddling the cut are clipped.
func (p Plan) Shift(elapsed sim.Time) Plan {
	out := Plan{Seed: p.Seed}
	for _, f := range p.Faults {
		switch f.Kind {
		case Crash:
			if f.At <= elapsed {
				continue
			}
			f.At -= elapsed
		default:
			if f.Until <= elapsed {
				continue
			}
			f.Until -= elapsed
			if f.At <= elapsed {
				f.At = 0
			} else {
				f.At -= elapsed
			}
		}
		out.Faults = append(out.Faults, f)
	}
	return out
}

// Arm installs the plan's faults onto a world before it runs. Crashes
// become scheduled node failures; windows configure the machine and
// scheduler layers directly. Crash targets beyond the world's node
// count and straggler targets beyond its PE count are skipped — after a
// shrink recovery, faults aimed at departed hardware have nothing left
// to strike.
//
// Window faults emit their trace spans here, at arm time, rather than
// from simulation callbacks: arming schedules no engine events of its
// own (beyond the crash timers both traced and untraced runs share), so
// tracing a faulty run cannot perturb event ordering.
func (p Plan) Arm(w *ampi.World) error {
	for _, f := range p.Faults {
		switch f.Kind {
		case Crash:
			if f.Node < 0 || f.Node >= len(w.Cluster.Nodes) {
				continue
			}
			if err := w.ScheduleNodeFailure(f.Node, f.At); err != nil {
				return fmt.Errorf("ft: arming %v: %w", f.Kind, err)
			}
		case LinkDegrade:
			w.Cluster.DegradeLinks(f.At, f.Until, f.Factor)
			if t := w.Cluster.Tracer; t != nil && f.Until > f.At {
				t.Emit(trace.Event{Time: f.At, Dur: f.Until - f.At, Kind: trace.KindFault,
					PE: -1, VP: -1, Peer: -1, Aux: trace.FaultLinkDegrade})
			}
		case Straggler:
			scheds := w.Scheds()
			if f.PE < 0 || f.PE >= len(scheds) {
				continue
			}
			scheds[f.PE].AddSlowdown(ult.SlowWindow{Start: f.At, End: f.Until, Factor: f.Factor})
			if t := w.Cluster.Tracer; t != nil && f.Until > f.At {
				t.Emit(trace.Event{Time: f.At, Dur: f.Until - f.At, Kind: trace.KindFault,
					PE: int32(f.PE), VP: -1, Peer: -1, Aux: trace.FaultStraggler})
			}
		default:
			return fmt.Errorf("ft: unknown fault kind %v", f.Kind)
		}
	}
	return nil
}

// Crashes returns just the plan's crash faults, in order.
func (p Plan) Crashes() []Fault {
	var out []Fault
	for _, f := range p.Faults {
		if f.Kind == Crash {
			out = append(out, f)
		}
	}
	return out
}

// CrashPlan samples a crash schedule from a Poisson failure process:
// inter-arrival gaps are exponentially distributed with mean mtbf, the
// struck node is uniform over [0, nodes), and sampling stops at the
// horizon. The plan is a pure function of its arguments — the seeded
// generator lives and dies here — so the same (seed, nodes, mtbf,
// horizon) always yields the same schedule, on any machine, under any
// sweep parallelism.
func CrashPlan(seed uint64, nodes int, mtbf, horizon sim.Time) Plan {
	p := Plan{Seed: seed}
	if nodes <= 0 || mtbf <= 0 || horizon <= 0 {
		return p
	}
	rng := sim.NewRNG(seed)
	t := sim.Time(0)
	for {
		gap := sim.Time(-math.Log(1-rng.Float64()) * float64(mtbf))
		if gap < 1 {
			gap = 1 // clamp pathological draws to one tick
		}
		t += gap
		if t >= horizon || t < 0 {
			return p
		}
		p.Faults = append(p.Faults, Fault{Kind: Crash, At: t, Node: rng.Intn(nodes)})
	}
}
