package ft

import (
	"math"

	"provirt/internal/sim"
)

// Checkpoint-interval policy: how often a job should snapshot given its
// checkpoint cost C and the machine's mean time between failures M.
// Too-frequent checkpoints waste time writing snapshots; too-rare ones
// waste time recomputing lost work after a failure. Young's first-order
// model and Daly's higher-order refinement give the classic optima.

// YoungInterval is Young's first-order optimal checkpoint interval,
// sqrt(2·C·M), for checkpoint cost ckpt and mean time between failures
// mtbf. Non-positive inputs return 0 (checkpointing disabled).
func YoungInterval(ckpt, mtbf sim.Time) sim.Time {
	if ckpt <= 0 || mtbf <= 0 {
		return 0
	}
	return sim.Time(math.Sqrt(2 * float64(ckpt) * float64(mtbf)))
}

// DalyInterval is Daly's higher-order estimate of the optimal interval
// between checkpoint starts:
//
//	τ = sqrt(2·C·M) · [1 + (1/3)·sqrt(C/(2M)) + (1/9)·(C/(2M))] − C
//
// for C < 2M; when checkpoints cost as much as the failure interval
// itself (C >= 2M) the model degenerates and Daly prescribes τ = M.
// Non-positive inputs return 0.
func DalyInterval(ckpt, mtbf sim.Time) sim.Time {
	if ckpt <= 0 || mtbf <= 0 {
		return 0
	}
	c, m := float64(ckpt), float64(mtbf)
	if c >= 2*m {
		return mtbf
	}
	x := c / (2 * m)
	return sim.Time(math.Sqrt(2*c*m)*(1+math.Sqrt(x)/3+x/9) - c)
}
