package ft_test

import (
	"testing"
	"time"

	"provirt/internal/ampi"
	"provirt/internal/ft"
	"provirt/internal/workloads/synth"
)

// Recovery-path benchmarks: one mid-run node crash, supervised restart
// from the last snapshot. The FS variant restores through the shared
// filesystem; the buddy variant restores from the surviving in-memory
// copies over the network.

func benchRecovery(b *testing.B, target ampi.CheckpointTarget, recovery ft.RecoveryMode) {
	cfg := testConfig(2, 4, target, 5*time.Millisecond)
	setup, total := probe(b, cfg)
	crashAt := setup + (total-setup)*3/5
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		finals := make([]uint64, cfg.VPs)
		rep, err := ft.Run(ft.Job{
			Config:   cfg,
			Program:  func() *ampi.Program { return synth.Checkpointed(testIters, testCompute, finals) },
			Plan:     ft.Plan{Faults: []ft.Fault{{Kind: ft.Crash, At: crashAt, Node: 1}}},
			Recovery: recovery,
		})
		if err != nil {
			b.Fatal(err)
		}
		if rep.Attempts != 2 {
			b.Fatalf("attempts = %d, want 2", rep.Attempts)
		}
	}
}

func BenchmarkRecoverySpareFS(b *testing.B)    { benchRecovery(b, ampi.TargetFS, ft.Spare) }
func BenchmarkRecoverySpareBuddy(b *testing.B) { benchRecovery(b, ampi.TargetBuddy, ft.Spare) }
func BenchmarkRecoveryShrinkBuddy(b *testing.B) {
	benchRecovery(b, ampi.TargetBuddy, ft.Shrink)
}

func BenchmarkFaultFreeSupervised(b *testing.B) {
	cfg := testConfig(2, 4, ampi.TargetFS, 5*time.Millisecond)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		finals := make([]uint64, cfg.VPs)
		_, err := ft.Run(ft.Job{
			Config:  cfg,
			Program: func() *ampi.Program { return synth.Checkpointed(testIters, testCompute, finals) },
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// Elastic-path benchmark: the expand+evict storm. The supervisor
// drains the job onto an arriving node mid-run, then drains a noticed
// spot eviction — two full drain/reshape/restart cycles with placement
// remaps and snapshot restores, the hot loop of every elastic sweep
// point.
func BenchmarkElasticExpandEvictStorm(b *testing.B) {
	cfg := testConfig(2, 4, ampi.TargetFS, 5*time.Millisecond)
	setup, total := probe(b, cfg)
	span := total - setup
	plan := ft.ChurnPlan{Events: []ft.ChurnEvent{
		{Kind: ft.Arrival, At: setup + span/4, Count: 1},
		{Kind: ft.Eviction, At: setup + span/2, Node: 1, Notice: 4 * total},
	}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		finals := make([]uint64, cfg.VPs)
		rep, err := ft.RunElastic(ft.ElasticJob{
			Config:  cfg,
			Program: func() *ampi.Program { return synth.Checkpointed(testIters, testCompute, finals) },
			Churn:   plan,
		})
		if err != nil {
			b.Fatal(err)
		}
		if rep.Epochs() != 2 {
			b.Fatalf("epochs = %d, want 2", rep.Epochs())
		}
		if got := rep.ReworkNoticed(); got != 0 {
			b.Fatalf("noticed rework = %v, want 0", got)
		}
	}
}
