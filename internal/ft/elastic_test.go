package ft_test

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"provirt/internal/ampi"
	"provirt/internal/ft"
	"provirt/internal/lb"
	"provirt/internal/sim"
	"provirt/internal/trace"
	"provirt/internal/workloads/synth"
)

func TestRecoveryModeRoundTrip(t *testing.T) {
	for _, m := range []ft.RecoveryMode{ft.Spare, ft.Shrink, ft.Expand} {
		got, err := ft.ParseRecoveryMode(m.String())
		if err != nil {
			t.Fatalf("ParseRecoveryMode(%q): %v", m.String(), err)
		}
		if got != m {
			t.Errorf("round trip %v -> %q -> %v", m, m.String(), got)
		}
	}
	if s := ft.RecoveryMode(42).String(); s != "unknown(42)" {
		t.Errorf("RecoveryMode(42).String() = %q, want unknown(42)", s)
	}
	if _, err := ft.ParseRecoveryMode("unknown(42)"); err == nil {
		t.Error("ParseRecoveryMode accepted an unknown name")
	}
}

func TestExpandRecoveryGrowsMachine(t *testing.T) {
	cfg := testConfig(2, 8, ampi.TargetFS, 5*time.Millisecond)
	setup, total := probe(t, cfg)
	crashAt := setup + (total-setup)*3/5

	finals := make([]uint64, cfg.VPs)
	rep, err := ft.Run(ft.Job{
		Config:   cfg,
		Program:  func() *ampi.Program { return synth.Checkpointed(testIters, testCompute, finals) },
		Plan:     ft.Plan{Faults: []ft.Fault{{Kind: ft.Crash, At: crashAt, Node: 1}}},
		Recovery: ft.Expand,
	})
	if err != nil {
		t.Fatal(err)
	}
	checkFinals(t, finals)
	rec := rep.Recoveries[0]
	if !rec.Expanded || rec.Shrunk {
		t.Errorf("expand recovery record = %+v, want Expanded", rec)
	}
	if got := len(rep.World.Cluster.Nodes); got != 3 {
		t.Errorf("expand recovery ended with %d nodes, want 3 (spare + one extra)", got)
	}
}

func TestChurnSpecCompileDeterministicAndSeedSensitive(t *testing.T) {
	spec := ft.ChurnSpec{
		Seed:          11,
		ArrivalEvery:  200 * sim.Time(time.Millisecond),
		EvictionEvery: 300 * sim.Time(time.Millisecond),
		Notice:        10 * sim.Time(time.Millisecond),
		Horizon:       2 * sim.Time(time.Second),
	}
	a := spec.Compile(4)
	b := spec.Compile(4)
	if fmt.Sprintf("%+v", a) != fmt.Sprintf("%+v", b) {
		t.Error("same spec compiled to different plans")
	}
	if len(a.Events) == 0 {
		t.Fatal("busy spec compiled to an empty plan")
	}
	if err := a.Validate(); err != nil {
		t.Fatalf("compiled plan invalid: %v", err)
	}
	spec.Seed = 12
	if fmt.Sprintf("%+v", spec.Compile(4).Events) == fmt.Sprintf("%+v", a.Events) {
		t.Error("different seeds compiled to identical plans")
	}
	// Disabling one process must not reshuffle the other: the eviction
	// sub-stream is forked independently of the arrival stream.
	evOnly := ft.ChurnSpec{Seed: 11, EvictionEvery: spec.EvictionEvery, Notice: spec.Notice, Horizon: spec.Horizon}.Compile(4)
	var fromBoth []ft.ChurnEvent
	for _, ev := range a.Events {
		if ev.Kind == ft.Eviction {
			fromBoth = append(fromBoth, ev)
		}
	}
	if fmt.Sprintf("%+v", evOnly.Events) != fmt.Sprintf("%+v", fromBoth) {
		t.Error("disabling arrivals reshuffled the eviction stream")
	}
	if got := (ft.ChurnSpec{}).Compile(4); len(got.Events) != 0 {
		t.Error("empty spec compiled to events")
	}
}

func TestChurnSpecRollingAndTruncation(t *testing.T) {
	roll := ft.ChurnSpec{
		RollingEvery: 50 * sim.Time(time.Millisecond),
		Notice:       5 * sim.Time(time.Millisecond),
		Horizon:      sim.Time(time.Second),
	}.Compile(3)
	if len(roll.Events) != 6 {
		t.Fatalf("rolling walk over 3 nodes compiled %d events, want 6", len(roll.Events))
	}
	for i := 0; i < 3; i++ {
		ev, ar := roll.Events[2*i], roll.Events[2*i+1]
		if ev.Kind != ft.Eviction || ev.Node != i || ev.Notice != 5*sim.Time(time.Millisecond) {
			t.Errorf("rolling step %d eviction = %+v", i, ev)
		}
		if ar.Kind != ft.Arrival || ar.At != ev.At {
			t.Errorf("rolling step %d replacement = %+v, want arrival at %v", i, ar, ev.At)
		}
	}
	tight := ft.ChurnSpec{
		EvictionEvery: sim.Time(time.Millisecond),
		Horizon:       sim.Time(time.Second),
		MaxEvents:     5,
	}.Compile(4)
	if len(tight.Events) != 5 {
		t.Errorf("MaxEvents=5 kept %d events", len(tight.Events))
	}
}

func TestChurnPlanValidate(t *testing.T) {
	ms := sim.Time(time.Millisecond)
	cases := []struct {
		name string
		plan ft.ChurnPlan
		ok   bool
	}{
		{"empty", ft.ChurnPlan{}, true},
		{"ordered", ft.ChurnPlan{Events: []ft.ChurnEvent{
			{Kind: ft.Arrival, At: ms, Count: 1},
			{Kind: ft.Eviction, At: 2 * ms},
		}}, true},
		{"out of order", ft.ChurnPlan{Events: []ft.ChurnEvent{
			{Kind: ft.Arrival, At: 2 * ms, Count: 1},
			{Kind: ft.Eviction, At: ms},
		}}, false},
		{"zero-count arrival", ft.ChurnPlan{Events: []ft.ChurnEvent{{Kind: ft.Arrival, At: ms}}}, false},
		{"negative notice", ft.ChurnPlan{Events: []ft.ChurnEvent{{Kind: ft.Eviction, At: ms, Notice: -1}}}, false},
		{"unknown kind", ft.ChurnPlan{Events: []ft.ChurnEvent{{Kind: ft.ChurnKind(9), At: ms}}}, false},
	}
	for _, tc := range cases {
		err := tc.plan.Validate()
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: validation passed", tc.name)
		}
	}
}

// elasticJob builds the standard elastic test job: a checkpointed
// program on the given machine, churn supplied by the caller.
func elasticJob(cfg ampi.Config, finals []uint64) ft.ElasticJob {
	return ft.ElasticJob{
		Config:  cfg,
		Program: func() *ampi.Program { return synth.Checkpointed(testIters, testCompute, finals) },
	}
}

// TestElasticNoticedEvictionDrains pins the headline property: an
// eviction whose notice spans a consistency point costs zero rework —
// the job drains through a checkpoint, vacates the node, and resumes
// on the survivors without losing a tick of work.
func TestElasticNoticedEvictionDrains(t *testing.T) {
	for _, target := range []ampi.CheckpointTarget{ampi.TargetFS, ampi.TargetBuddy} {
		t.Run(fmt.Sprint(target), func(t *testing.T) {
			cfg := testConfig(3, 6, target, 5*time.Millisecond)
			setup, total := probe(t, cfg)

			finals := make([]uint64, cfg.VPs)
			job := elasticJob(cfg, finals)
			job.Churn = ft.ChurnPlan{Events: []ft.ChurnEvent{
				{Kind: ft.Eviction, At: setup + (total-setup)/2, Node: 1, Notice: total},
			}}
			rep, err := ft.RunElastic(job)
			if err != nil {
				t.Fatal(err)
			}
			checkFinals(t, finals)
			if rep.Attempts != 2 {
				t.Fatalf("attempts = %d, want 2 (drain + resumed run)", rep.Attempts)
			}
			if rep.Epochs() != 1 {
				t.Fatalf("epochs = %d, want 1", rep.Epochs())
			}
			rz := rep.Resizes[0]
			if !rz.Drained || rz.Crashed {
				t.Errorf("noticed eviction resize = %+v, want Drained", rz)
			}
			if rz.Rework != 0 || rep.ReworkNoticed() != 0 {
				t.Errorf("noticed eviction lost work: %v", rz.Rework)
			}
			if rz.Kind != ft.Eviction || rz.Delta != -1 || rz.Nodes != 2 {
				t.Errorf("resize shape = %+v, want one node gone (2 left)", rz)
			}
			if got := len(rep.World.Cluster.Nodes); got != 2 {
				t.Errorf("job ended on %d nodes, want 2", got)
			}
			if rep.TotalTime <= total {
				t.Errorf("eviction mid-run should stretch time-to-solution past %v, got %v", total, rep.TotalTime)
			}
		})
	}
}

// TestElasticEvictionNoticeTooShortCrashes pins the degradation: a
// notice too short to reach the next consistency point turns the
// eviction into an ordinary crash, rework included.
func TestElasticEvictionNoticeTooShortCrashes(t *testing.T) {
	// A checkpoint interval past the horizon: the only snapshot a run
	// can have is a forced drain, so the crash path visibly loses the
	// whole attempt.
	cfg := testConfig(3, 6, ampi.TargetFS, sim.Time(time.Second))
	setup, total := probe(t, cfg)

	finals := make([]uint64, cfg.VPs)
	job := elasticJob(cfg, finals)
	job.Churn = ft.ChurnPlan{Events: []ft.ChurnEvent{
		{Kind: ft.Eviction, At: setup + (total-setup)*3/5, Node: 1, Notice: 0},
	}}
	rep, err := ft.RunElastic(job)
	if err != nil {
		t.Fatal(err)
	}
	checkFinals(t, finals)
	if rep.Epochs() != 1 {
		t.Fatalf("epochs = %d, want 1", rep.Epochs())
	}
	rz := rep.Resizes[0]
	if !rz.Crashed || rz.Drained {
		t.Errorf("zero-notice eviction resize = %+v, want Crashed", rz)
	}
	if rz.Rework <= 0 || rep.ReworkForced() != rz.Rework {
		t.Errorf("crashed eviction rework = %v, want positive", rz.Rework)
	}
	if got := len(rep.World.Cluster.Nodes); got != 2 {
		t.Errorf("job ended on %d nodes, want 2", got)
	}
}

// TestElasticDrainBeatsCrash is the experiment's headline comparison in
// miniature: the same eviction costs strictly less time-to-solution
// when the notice allows a drain than when it forces a crash.
func TestElasticDrainBeatsCrash(t *testing.T) {
	cfg := testConfig(3, 6, ampi.TargetFS, sim.Time(time.Second))
	setup, total := probe(t, cfg)
	evictAt := setup + (total-setup)*3/5

	run := func(notice sim.Time) *ft.ElasticReport {
		finals := make([]uint64, cfg.VPs)
		job := elasticJob(cfg, finals)
		job.Churn = ft.ChurnPlan{Events: []ft.ChurnEvent{
			{Kind: ft.Eviction, At: evictAt, Node: 1, Notice: notice},
		}}
		rep, err := ft.RunElastic(job)
		if err != nil {
			t.Fatal(err)
		}
		checkFinals(t, finals)
		return rep
	}
	drained := run(total)
	crashed := run(0)
	if !drained.Resizes[0].Drained || !crashed.Resizes[0].Crashed {
		t.Fatalf("setup failed: drained=%+v crashed=%+v", drained.Resizes[0], crashed.Resizes[0])
	}
	if drained.ReworkNoticed() != 0 {
		t.Errorf("drained eviction reworked %v", drained.ReworkNoticed())
	}
	if crashed.ReworkForced() <= 0 {
		t.Errorf("crashed eviction reworked %v, want positive", crashed.ReworkForced())
	}
	if crashed.TotalTime <= drained.TotalTime {
		t.Errorf("crash path (%v) should cost more time-to-solution than drain path (%v)",
			crashed.TotalTime, drained.TotalTime)
	}
}

func TestElasticArrivalExpandsMachine(t *testing.T) {
	cfg := testConfig(2, 8, ampi.TargetFS, 5*time.Millisecond)
	setup, total := probe(t, cfg)

	finals := make([]uint64, cfg.VPs)
	job := elasticJob(cfg, finals)
	job.Churn = ft.ChurnPlan{Events: []ft.ChurnEvent{
		{Kind: ft.Arrival, At: setup + (total-setup)/2, Count: 1},
	}}
	rep, err := ft.RunElastic(job)
	if err != nil {
		t.Fatal(err)
	}
	checkFinals(t, finals)
	rz := rep.Resizes[0]
	if rz.Kind != ft.Arrival || !rz.Drained || rz.Delta != 1 || rz.Nodes != 3 {
		t.Errorf("arrival resize = %+v, want drained +1 node", rz)
	}
	if got := len(rep.World.Cluster.Nodes); got != 3 {
		t.Errorf("job ended on %d nodes, want 3", got)
	}
	// The new node joined mid-run: node-seconds must land strictly
	// between 2x and 3x the run length.
	if lo, hi := 2*rep.TotalTime, 3*rep.TotalTime; rep.NodeSeconds <= lo || rep.NodeSeconds >= hi {
		t.Errorf("node-seconds %v outside (%v, %v)", rep.NodeSeconds, lo, hi)
	}
	if rep.NodeHours() <= 0 {
		t.Error("node-hours not positive")
	}
}

func TestElasticRollingRestartPreservesShape(t *testing.T) {
	cfg := testConfig(2, 4, ampi.TargetFS, 5*time.Millisecond)
	setup, total := probe(t, cfg)

	finals := make([]uint64, cfg.VPs)
	job := elasticJob(cfg, finals)
	job.Churn = ft.RollingPlan(setup+(total-setup)/3, 20*sim.Time(time.Millisecond), total, 2)
	job.MaxRestarts = 16
	rep, err := ft.RunElastic(job)
	if err != nil {
		t.Fatal(err)
	}
	checkFinals(t, finals)
	if rep.Epochs() != 4 {
		t.Fatalf("epochs = %d, want 4 (two evict+replace pairs)", rep.Epochs())
	}
	for i, rz := range rep.Resizes {
		if !rz.Drained {
			t.Errorf("rolling step %d not drained: %+v", i, rz)
		}
	}
	if rep.ReworkNoticed() != 0 {
		t.Errorf("rolling restart lost %v of work", rep.ReworkNoticed())
	}
	if got := len(rep.World.Cluster.Nodes); got != 2 {
		t.Errorf("rolling restart ended on %d nodes, want the original 2", got)
	}
}

// TestElasticChurnFreeIsIdentical pins the hot-path guarantee at the
// supervisor level: with no churn, no faults, and no autoscaler,
// RunElastic is bit-identical to a bare run — same virtual time, same
// application state, byte-identical trace.
func TestElasticChurnFreeIsIdentical(t *testing.T) {
	run := func(elastic bool) (sim.Time, []uint64, []byte) {
		cfg := testConfig(2, 4, ampi.TargetFS, 5*time.Millisecond)
		rec := trace.NewRecorder()
		cfg.Tracer = rec
		finals := make([]uint64, cfg.VPs)
		var w *ampi.World
		if elastic {
			rep, err := ft.RunElastic(elasticJob(cfg, finals))
			if err != nil {
				t.Fatal(err)
			}
			w = rep.World
		} else {
			var err error
			w, err = ampi.NewWorld(cfg, synth.Checkpointed(testIters, testCompute, finals))
			if err != nil {
				t.Fatal(err)
			}
			if err := w.Run(); err != nil {
				t.Fatal(err)
			}
		}
		var buf bytes.Buffer
		if err := trace.WriteJSONL(&buf, rec.Events()); err != nil {
			t.Fatal(err)
		}
		return w.Time(), finals, buf.Bytes()
	}
	bareTime, bareFinals, bareTrace := run(false)
	elTime, elFinals, elTrace := run(true)
	if bareTime != elTime {
		t.Errorf("churn-free elastic time %v != bare %v", elTime, bareTime)
	}
	if fmt.Sprint(bareFinals) != fmt.Sprint(elFinals) {
		t.Errorf("churn-free elastic finals %v != bare %v", elFinals, bareFinals)
	}
	if !bytes.Equal(bareTrace, elTrace) {
		t.Errorf("churn-free elastic trace differs from bare run (%d vs %d bytes)", len(elTrace), len(bareTrace))
	}
}

func TestElasticDeterministic(t *testing.T) {
	run := func() (sim.Time, sim.Time, []uint64) {
		cfg := testConfig(3, 6, ampi.TargetFS, 5*time.Millisecond)
		setup, total := probe(t, cfg)
		finals := make([]uint64, cfg.VPs)
		job := elasticJob(cfg, finals)
		job.Churn = ft.ChurnPlan{Events: []ft.ChurnEvent{
			{Kind: ft.Eviction, At: setup + (total-setup)/3, Node: 2, Notice: total},
			{Kind: ft.Arrival, At: setup + (total-setup)*2/3, Count: 1},
		}}
		job.Faults = ft.Plan{Faults: []ft.Fault{{Kind: ft.Crash, At: total * 4 / 5, Node: 0}}}
		job.MaxRestarts = 16
		rep, err := ft.RunElastic(job)
		if err != nil {
			t.Fatal(err)
		}
		return rep.TotalTime, rep.NodeSeconds, finals
	}
	t1, n1, f1 := run()
	t2, n2, f2 := run()
	if t1 != t2 || n1 != n2 || fmt.Sprint(f1) != fmt.Sprint(f2) {
		t.Errorf("elastic run not deterministic: (%v, %v, %v) vs (%v, %v, %v)", t1, n1, f1, t2, n2, f2)
	}
}

func TestElasticAutoscaleScalesUp(t *testing.T) {
	cfg := testConfig(2, 8, ampi.TargetFS, 5*time.Millisecond)
	setup, total := probe(t, cfg)

	finals := make([]uint64, cfg.VPs)
	job := elasticJob(cfg, finals)
	// Place the control point mid-execution (privatization setup
	// dominates these tiny runs and drags measured utilization down)
	// and pick a target far below it: the controller grows the machine
	// at each control point until MaxNodes.
	job.Autoscale = &lb.Autoscaler{TargetUtil: 0.02, HighWater: 0.05, MaxNodes: 4}
	job.AutoscaleEvery = setup + (total-setup)/2
	job.MaxRestarts = 16
	rep, err := ft.RunElastic(job)
	if err != nil {
		t.Fatal(err)
	}
	checkFinals(t, finals)
	var auto int
	for _, rz := range rep.Resizes {
		if rz.Auto {
			auto++
			if rz.Kind != ft.Arrival || rz.Delta <= 0 {
				t.Errorf("autoscale resize = %+v, want growth", rz)
			}
		}
	}
	if auto == 0 {
		t.Fatalf("no autoscale resizes; resizes = %+v", rep.Resizes)
	}
	if got := len(rep.World.Cluster.Nodes); got <= 2 {
		t.Errorf("autoscaled job ended on %d nodes, want > 2", got)
	}
}

func TestElasticValidation(t *testing.T) {
	cfg := testConfig(2, 4, ampi.TargetFS, 5*time.Millisecond)
	finals := make([]uint64, cfg.VPs)
	if _, err := ft.RunElastic(ft.ElasticJob{Config: cfg}); err == nil {
		t.Error("RunElastic accepted a job with no program")
	}
	job := elasticJob(cfg, finals)
	job.Config.Checkpoint = nil
	job.Churn = ft.ChurnPlan{Events: []ft.ChurnEvent{{Kind: ft.Arrival, At: 1, Count: 1}}}
	if _, err := ft.RunElastic(job); err == nil {
		t.Error("RunElastic accepted churn without a checkpoint policy")
	}
	job = elasticJob(cfg, finals)
	job.Churn = ft.ChurnPlan{Events: []ft.ChurnEvent{{Kind: ft.Arrival, At: 1}}}
	if _, err := ft.RunElastic(job); err == nil {
		t.Error("RunElastic accepted an invalid churn plan")
	}
	job = elasticJob(cfg, finals)
	job.Autoscale = &lb.Autoscaler{TargetUtil: 0.5}
	if _, err := ft.RunElastic(job); err == nil {
		t.Error("RunElastic accepted an autoscaler without a control interval")
	}
}
