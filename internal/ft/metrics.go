package ft

import "provirt/internal/obs"

// Host-side supervisor instruments (package obs). A sweep full of
// supervised jobs recovers from hundreds of injected crashes; these
// counters expose the aggregate resilience cost — how often recovery
// ran and how much virtual work it threw away — without touching the
// per-run Report. Nil by default; updates are atomic so parallel
// sweep points share them.
type obsMetrics struct {
	// recoveries counts crashes the supervisor recovered from;
	// shrinks counts the subset that dropped the failed node instead
	// of using a spare.
	recoveries *obs.Counter
	shrinks    *obs.Counter
	// reworkNS accumulates virtual nanoseconds of work crashes threw
	// away (snapshot-to-crash distance per recovery).
	reworkNS *obs.Counter
	// restoredBytes accumulates snapshot volume restarts read back.
	restoredBytes *obs.Counter
	// epochs counts cluster membership transitions elastic supervisors
	// executed (arrivals + evictions + autoscale resizes); drains
	// counts the graceful drain checkpoints taken ahead of planned
	// departures.
	epochs *obs.Counter
	drains *obs.Counter
	// rebalanceMoves counts ranks the expand/shrink placements moved.
	rebalanceMoves *obs.Counter
	// nodeSeconds gauges the virtual node-seconds the most recent
	// elastic job consumed — the cost axis of the elastic experiment.
	nodeSeconds *obs.Gauge
}

var metrics obsMetrics

// EnableObs registers the supervisor instruments in r and turns them
// on; EnableObs(nil) restores the no-op state. Call it only while no
// supervised job is running.
func EnableObs(r *obs.Registry) {
	if r == nil {
		metrics = obsMetrics{}
		return
	}
	metrics = obsMetrics{
		recoveries: r.Counter("ft_recoveries_total",
			"node crashes the supervisor recovered from"),
		shrinks: r.Counter("ft_shrink_recoveries_total",
			"recoveries that shrank onto survivors instead of using a spare"),
		reworkNS: r.Counter("ft_rework_virtual_ns_total",
			"virtual nanoseconds of work lost to crashes (rework)"),
		restoredBytes: r.Counter("ft_restored_bytes_total",
			"checkpoint bytes restarts read back"),
		epochs: r.Counter("ft_membership_epochs_total",
			"cluster membership transitions elastic supervisors executed"),
		drains: r.Counter("ft_drain_checkpoints_total",
			"graceful drain checkpoints taken ahead of planned departures"),
		rebalanceMoves: r.Counter("ft_rebalance_moves_total",
			"ranks moved by expand/shrink placement recomputation"),
		nodeSeconds: r.Gauge("ft_elastic_node_seconds",
			"virtual node-seconds consumed by the most recent elastic job"),
	}
}
