package ft

import "provirt/internal/obs"

// Host-side supervisor instruments (package obs). A sweep full of
// supervised jobs recovers from hundreds of injected crashes; these
// counters expose the aggregate resilience cost — how often recovery
// ran and how much virtual work it threw away — without touching the
// per-run Report. Nil by default; updates are atomic so parallel
// sweep points share them.
type obsMetrics struct {
	// recoveries counts crashes the supervisor recovered from;
	// shrinks counts the subset that dropped the failed node instead
	// of using a spare.
	recoveries *obs.Counter
	shrinks    *obs.Counter
	// reworkNS accumulates virtual nanoseconds of work crashes threw
	// away (snapshot-to-crash distance per recovery).
	reworkNS *obs.Counter
	// restoredBytes accumulates snapshot volume restarts read back.
	restoredBytes *obs.Counter
}

var metrics obsMetrics

// EnableObs registers the supervisor instruments in r and turns them
// on; EnableObs(nil) restores the no-op state. Call it only while no
// supervised job is running.
func EnableObs(r *obs.Registry) {
	if r == nil {
		metrics = obsMetrics{}
		return
	}
	metrics = obsMetrics{
		recoveries: r.Counter("ft_recoveries_total",
			"node crashes the supervisor recovered from"),
		shrinks: r.Counter("ft_shrink_recoveries_total",
			"recoveries that shrank onto survivors instead of using a spare"),
		reworkNS: r.Counter("ft_rework_virtual_ns_total",
			"virtual nanoseconds of work lost to crashes (rework)"),
		restoredBytes: r.Counter("ft_restored_bytes_total",
			"checkpoint bytes restarts read back"),
	}
}
