package ft_test

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"provirt/internal/ampi"
	"provirt/internal/core"
	"provirt/internal/ft"
	"provirt/internal/machine"
	"provirt/internal/sim"
	"provirt/internal/trace"
	"provirt/internal/workloads/synth"
)

const (
	testIters   = 8
	testCompute = 2 * time.Millisecond
)

func testConfig(nodes, vps int, target ampi.CheckpointTarget, interval sim.Time) ampi.Config {
	return ampi.Config{
		Machine:   machine.Config{Nodes: nodes, ProcsPerNode: 1, PEsPerProc: 2},
		VPs:       vps,
		Privatize: core.KindPIEglobals,
		Checkpoint: &ampi.CheckpointPolicy{
			Target:   target,
			Dir:      "/scratch/ckpt",
			Interval: interval,
		},
	}
}

// probe runs the job fault-free and reports its setup and total time,
// so tests can aim crashes mid-run without hard-coding timings.
func probe(t testing.TB, cfg ampi.Config) (setup, total sim.Time) {
	t.Helper()
	finals := make([]uint64, cfg.VPs)
	w, err := ampi.NewWorld(cfg, synth.Checkpointed(testIters, testCompute, finals))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	return w.SetupDone, w.Time()
}

func checkFinals(t *testing.T, finals []uint64) {
	t.Helper()
	for rank, got := range finals {
		if want := synth.CheckpointedAcc(testIters, rank); got != want {
			t.Errorf("rank %d: acc = %d, want %d (work lost or double-counted)", rank, got, want)
		}
	}
}

func TestSpareRecoveryFromFSCheckpoint(t *testing.T) {
	cfg := testConfig(2, 4, ampi.TargetFS, 5*time.Millisecond)
	setup, total := probe(t, cfg)
	crashAt := setup + (total-setup)*3/5

	finals := make([]uint64, cfg.VPs)
	rep, err := ft.Run(ft.Job{
		Config:   cfg,
		Program:  func() *ampi.Program { return synth.Checkpointed(testIters, testCompute, finals) },
		Plan:     ft.Plan{Faults: []ft.Fault{{Kind: ft.Crash, At: crashAt, Node: 1}}},
		Recovery: ft.Spare,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2 (one crash, one recovery)", rep.Attempts)
	}
	checkFinals(t, finals)
	rec := rep.Recoveries[0]
	if rec.Node != 1 || rec.CrashAt != crashAt {
		t.Errorf("recovery record = %+v, want node 1 at %v", rec, crashAt)
	}
	if rec.Rework <= 0 || rec.Downtime <= 0 || rec.RestoredBytes == 0 {
		t.Errorf("recovery accounting empty: %+v", rec)
	}
	if rec.Shrunk {
		t.Error("spare recovery marked shrunk")
	}
	if rep.Checkpoints == 0 {
		t.Error("no checkpoints were taken")
	}
	if rep.TotalTime <= total {
		t.Errorf("total time %v under supervision with a crash should exceed fault-free %v", rep.TotalTime, total)
	}
	if got := len(rep.World.Cluster.Nodes); got != 2 {
		t.Errorf("spare recovery ended with %d nodes, want 2", got)
	}
}

func TestShrinkRecoveryFromBuddyCheckpoint(t *testing.T) {
	cfg := testConfig(3, 6, ampi.TargetBuddy, 5*time.Millisecond)
	setup, total := probe(t, cfg)
	crashAt := setup + (total-setup)*3/5

	finals := make([]uint64, cfg.VPs)
	rep, err := ft.Run(ft.Job{
		Config:   cfg,
		Program:  func() *ampi.Program { return synth.Checkpointed(testIters, testCompute, finals) },
		Plan:     ft.Plan{Faults: []ft.Fault{{Kind: ft.Crash, At: crashAt, Node: 1}}},
		Recovery: ft.Shrink,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2", rep.Attempts)
	}
	checkFinals(t, finals)
	rec := rep.Recoveries[0]
	if !rec.Shrunk {
		t.Error("shrink recovery not marked shrunk")
	}
	if rec.RestoredBytes == 0 {
		t.Error("buddy restore reported zero bytes")
	}
	if got := len(rep.World.Cluster.Nodes); got != 2 {
		t.Errorf("shrunk job ended with %d nodes, want 2", got)
	}
	// No filesystem involved: buddy checkpoints and restores live in
	// memory and on the network.
	if n := rep.World.Cluster.FS.BytesRead; n != 0 {
		t.Errorf("buddy restore read %d bytes from the shared fs", n)
	}
}

func TestSpareRecoveryFromBuddyCheckpoint(t *testing.T) {
	cfg := testConfig(2, 4, ampi.TargetBuddy, 5*time.Millisecond)
	setup, total := probe(t, cfg)
	crashAt := setup + (total-setup)*3/5

	finals := make([]uint64, cfg.VPs)
	rep, err := ft.Run(ft.Job{
		Config:   cfg,
		Program:  func() *ampi.Program { return synth.Checkpointed(testIters, testCompute, finals) },
		Plan:     ft.Plan{Faults: []ft.Fault{{Kind: ft.Crash, At: crashAt, Node: 0}}},
		Recovery: ft.Spare,
	})
	if err != nil {
		t.Fatal(err)
	}
	checkFinals(t, finals)
	if rep.World.Cluster.FS.BytesRead != 0 || rep.World.Cluster.FS.BytesWritten != 0 {
		t.Error("buddy checkpointing touched the shared filesystem")
	}
}

func TestCrashBeforeFirstCheckpointRestartsFromScratch(t *testing.T) {
	cfg := testConfig(2, 4, ampi.TargetFS, 5*time.Millisecond)
	setup, _ := probe(t, cfg)
	// Crash during startup, long before any checkpoint exists.
	crashAt := setup / 2

	finals := make([]uint64, cfg.VPs)
	rep, err := ft.Run(ft.Job{
		Config:   cfg,
		Program:  func() *ampi.Program { return synth.Checkpointed(testIters, testCompute, finals) },
		Plan:     ft.Plan{Faults: []ft.Fault{{Kind: ft.Crash, At: crashAt, Node: 0}}},
		Recovery: ft.Spare,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2", rep.Attempts)
	}
	checkFinals(t, finals)
	rec := rep.Recoveries[0]
	if rec.RestoredBytes != 0 {
		t.Errorf("from-scratch restart restored %d bytes", rec.RestoredBytes)
	}
	if rec.Rework != crashAt {
		t.Errorf("rework = %v, want the whole crashed attempt (%v)", rec.Rework, crashAt)
	}
	if rec.Downtime <= 0 {
		t.Error("from-scratch restart reported zero downtime")
	}
}

func TestRepeatedCrashesExhaustRestarts(t *testing.T) {
	cfg := testConfig(2, 4, ampi.TargetFS, 5*time.Millisecond)
	setup, total := probe(t, cfg)
	crashAt := setup + (total-setup)/2
	// One crash per restart, far beyond the retry budget.
	var faults []ft.Fault
	for i := 0; i < 10; i++ {
		faults = append(faults, ft.Fault{Kind: ft.Crash, At: crashAt * sim.Time(i+1), Node: i % 2})
	}
	finals := make([]uint64, cfg.VPs)
	rep, err := ft.Run(ft.Job{
		Config:      cfg,
		Program:     func() *ampi.Program { return synth.Checkpointed(testIters, testCompute, finals) },
		Plan:        ft.Plan{Faults: faults},
		Recovery:    ft.Spare,
		MaxRestarts: 2,
	})
	if err == nil {
		t.Fatal("supervisor kept restarting past MaxRestarts")
	}
	if rep.Attempts != 3 {
		t.Errorf("attempts = %d, want 3 (initial + 2 restarts)", rep.Attempts)
	}
}

// A fault-free supervised run must be bit-identical to a bare run: same
// virtual time, same application results, and byte-identical trace.
func TestFaultFreeSupervisedRunIsIdentical(t *testing.T) {
	run := func(supervised bool) (sim.Time, []uint64, []byte) {
		cfg := testConfig(2, 4, ampi.TargetFS, 5*time.Millisecond)
		rec := trace.NewRecorder()
		cfg.Tracer = rec
		finals := make([]uint64, cfg.VPs)
		prog := func() *ampi.Program { return synth.Checkpointed(testIters, testCompute, finals) }
		var w *ampi.World
		if supervised {
			rep, err := ft.Run(ft.Job{Config: cfg, Program: prog})
			if err != nil {
				t.Fatal(err)
			}
			w = rep.World
		} else {
			var err error
			w, err = ampi.NewWorld(cfg, prog())
			if err != nil {
				t.Fatal(err)
			}
			if err := w.Run(); err != nil {
				t.Fatal(err)
			}
		}
		var buf bytes.Buffer
		if err := trace.WriteJSONL(&buf, rec.Events()); err != nil {
			t.Fatal(err)
		}
		return w.Time(), finals, buf.Bytes()
	}
	bareTime, bareFinals, bareTrace := run(false)
	supTime, supFinals, supTrace := run(true)
	if bareTime != supTime {
		t.Errorf("supervised fault-free time %v != bare %v", supTime, bareTime)
	}
	if fmt.Sprint(bareFinals) != fmt.Sprint(supFinals) {
		t.Errorf("supervised finals %v != bare %v", supFinals, bareFinals)
	}
	if !bytes.Equal(bareTrace, supTrace) {
		t.Errorf("supervised fault-free trace differs from bare run (%d vs %d bytes)",
			len(supTrace), len(bareTrace))
	}
}

// A crash placed after checkpoints exist must leave the full fault
// lifecycle in the trace: the fault itself, its detection, and one
// recover span per restored rank.
func TestTracedRecoveryEmitsFaultLifecycle(t *testing.T) {
	cfg := testConfig(2, 4, ampi.TargetFS, 5*time.Millisecond)
	setup, total := probe(t, cfg)
	crashAt := setup + (total-setup)*3/5

	rec := trace.NewRecorder()
	cfg.Tracer = rec
	finals := make([]uint64, cfg.VPs)
	rep, err := ft.Run(ft.Job{
		Config:   cfg,
		Program:  func() *ampi.Program { return synth.Checkpointed(testIters, testCompute, finals) },
		Plan:     ft.Plan{Faults: []ft.Fault{{Kind: ft.Crash, At: crashAt, Node: 1}}},
		Recovery: ft.Spare,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Recoveries[0].RestoredBytes == 0 {
		t.Fatal("crash was meant to land after a checkpoint; restart was from scratch")
	}
	kinds := map[trace.Kind]int{}
	for _, ev := range rec.Events() {
		kinds[ev.Kind]++
	}
	if kinds[trace.KindFault] != 1 || kinds[trace.KindDetect] != 1 {
		t.Errorf("one crash should record one fault and one detect event, got %d and %d",
			kinds[trace.KindFault], kinds[trace.KindDetect])
	}
	if kinds[trace.KindRecover] != cfg.VPs {
		t.Errorf("recover events = %d, want one per restored rank (%d)", kinds[trace.KindRecover], cfg.VPs)
	}
}

// A recovered run must reach the same application state as an
// uninterrupted one — and do so deterministically: same plan, same
// bytes.
func TestRecoveredRunIsDeterministic(t *testing.T) {
	run := func() (sim.Time, []uint64) {
		cfg := testConfig(2, 4, ampi.TargetFS, 5*time.Millisecond)
		setup, total := probe(t, cfg)
		finals := make([]uint64, cfg.VPs)
		rep, err := ft.Run(ft.Job{
			Config:  cfg,
			Program: func() *ampi.Program { return synth.Checkpointed(testIters, testCompute, finals) },
			Plan: ft.Plan{Faults: []ft.Fault{
				{Kind: ft.Crash, At: setup + (total-setup)*3/5, Node: 1},
			}},
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep.TotalTime, finals
	}
	t1, f1 := run()
	t2, f2 := run()
	if t1 != t2 || fmt.Sprint(f1) != fmt.Sprint(f2) {
		t.Errorf("recovered run not deterministic: (%v, %v) vs (%v, %v)", t1, f1, t2, f2)
	}
}

func TestLinkDegradeSlowsTheRun(t *testing.T) {
	// Buddy checkpoints push deltas across the inter-node network, so a
	// degraded link stretches the run.
	run := func(plan ft.Plan) sim.Time {
		cfg := testConfig(2, 4, ampi.TargetBuddy, 5*time.Millisecond)
		finals := make([]uint64, cfg.VPs)
		w, err := ampi.NewWorld(cfg, synth.Checkpointed(testIters, testCompute, finals))
		if err != nil {
			t.Fatal(err)
		}
		if err := plan.Arm(w); err != nil {
			t.Fatal(err)
		}
		if err := w.Run(); err != nil {
			t.Fatal(err)
		}
		return w.Time()
	}
	healthy := run(ft.Plan{})
	window := ft.Plan{Faults: []ft.Fault{
		{Kind: ft.LinkDegrade, At: 0, Until: healthy * 2, Factor: 50},
	}}
	slow := run(window)
	if slow <= healthy {
		t.Errorf("degraded run %v not slower than healthy %v", slow, healthy)
	}
	if again := run(window); again != slow {
		t.Errorf("degraded run not deterministic: %v vs %v", again, slow)
	}
}

func TestStragglerSlowsTheRun(t *testing.T) {
	run := func(plan ft.Plan) sim.Time {
		cfg := testConfig(1, 4, ampi.TargetFS, 0)
		cfg.Checkpoint = nil
		finals := make([]uint64, cfg.VPs)
		w, err := ampi.NewWorld(cfg, synth.Checkpointed(testIters, testCompute, finals))
		if err != nil {
			t.Fatal(err)
		}
		if err := plan.Arm(w); err != nil {
			t.Fatal(err)
		}
		if err := w.Run(); err != nil {
			t.Fatal(err)
		}
		return w.Time()
	}
	healthy := run(ft.Plan{})
	window := ft.Plan{Faults: []ft.Fault{
		{Kind: ft.Straggler, At: 0, Until: healthy * 4, PE: 0, Factor: 3},
	}}
	slow := run(window)
	if slow <= healthy {
		t.Errorf("straggler run %v not slower than healthy %v", slow, healthy)
	}
	if again := run(window); again != slow {
		t.Errorf("straggler run not deterministic: %v vs %v", again, slow)
	}
}

func TestCrashPlanDeterministicAndSeedSensitive(t *testing.T) {
	a := ft.CrashPlan(7, 4, time.Second, 10*time.Second)
	b := ft.CrashPlan(7, 4, time.Second, 10*time.Second)
	if fmt.Sprintf("%+v", a) != fmt.Sprintf("%+v", b) {
		t.Error("same seed produced different plans")
	}
	if len(a.Faults) == 0 {
		t.Fatal("10x MTBF horizon sampled no crashes")
	}
	c := ft.CrashPlan(8, 4, time.Second, 10*time.Second)
	if fmt.Sprintf("%+v", a.Faults) == fmt.Sprintf("%+v", c.Faults) {
		t.Error("different seeds produced identical plans")
	}
	var last sim.Time
	for _, f := range a.Faults {
		if f.Kind != ft.Crash {
			t.Fatalf("CrashPlan produced %v", f.Kind)
		}
		if f.At <= last {
			t.Fatalf("crash times not strictly increasing: %v after %v", f.At, last)
		}
		if f.Node < 0 || f.Node >= 4 {
			t.Fatalf("crash node %d out of range", f.Node)
		}
		last = f.At
	}
	if empty := ft.CrashPlan(7, 4, 0, 10*time.Second); len(empty.Faults) != 0 {
		t.Error("zero MTBF should sample no crashes")
	}
}

func TestPlanShift(t *testing.T) {
	p := ft.Plan{Faults: []ft.Fault{
		{Kind: ft.Crash, At: 100},
		{Kind: ft.Crash, At: 300},
		{Kind: ft.LinkDegrade, At: 50, Until: 250, Factor: 2},
		{Kind: ft.Straggler, At: 260, Until: 280, PE: 1, Factor: 2},
	}}
	s := p.Shift(150)
	want := []ft.Fault{
		{Kind: ft.Crash, At: 150},
		{Kind: ft.LinkDegrade, At: 0, Until: 100, Factor: 2},
		{Kind: ft.Straggler, At: 110, Until: 130, PE: 1, Factor: 2},
	}
	if fmt.Sprintf("%+v", s.Faults) != fmt.Sprintf("%+v", want) {
		t.Errorf("Shift(150) = %+v, want %+v", s.Faults, want)
	}
}

func TestOptimalIntervals(t *testing.T) {
	c := 6 * time.Minute
	m := 24 * time.Hour
	young := ft.YoungInterval(c, m)
	// sqrt(2 * 360s * 86400s) ~= 7887.3s
	if got := young.Seconds(); got < 7880 || got > 7895 {
		t.Errorf("YoungInterval(6m, 24h) = %.1fs, want ~7887s", got)
	}
	daly := ft.DalyInterval(c, m)
	if daly <= 0 || daly >= young {
		t.Errorf("DalyInterval %v should be positive and below Young %v for small C/M", daly, young)
	}
	// Difference from Young is dominated by the -C term at small C/M.
	if diff := young - daly; diff < c/2 || diff > 2*c {
		t.Errorf("Young - Daly = %v, expected near C = %v", diff, c)
	}
	if got := ft.DalyInterval(10*time.Hour, time.Hour); got != time.Hour {
		t.Errorf("DalyInterval with C >= 2M = %v, want MTBF", got)
	}
	if ft.YoungInterval(0, m) != 0 || ft.DalyInterval(c, 0) != 0 {
		t.Error("non-positive inputs should disable checkpointing")
	}
	// Longer MTBF, longer interval.
	if ft.DalyInterval(c, 2*m) <= daly {
		t.Error("DalyInterval not monotonic in MTBF")
	}
}
