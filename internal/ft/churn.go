package ft

import (
	"fmt"
	"math"
	"sort"

	"provirt/internal/sim"
)

// Churn is membership change as data, the same discipline as fault
// Plans: a ChurnPlan is a list of node arrivals and evictions at
// absolute virtual times, compiled once (possibly from seeded Poisson
// processes) and then executed by the elastic supervisor. Runs under
// churn stay pure functions of their configuration.

// ChurnKind classifies a membership event.
type ChurnKind int

const (
	// Arrival adds nodes (capacity grew, or an autoscaler scaled up).
	Arrival ChurnKind = iota
	// Eviction removes one node, with an optional notice window —
	// the spot/preemptible-instance reclaim.
	Eviction
)

// String names the kind ("arrival", "eviction").
func (k ChurnKind) String() string {
	switch k {
	case Arrival:
		return "arrival"
	case Eviction:
		return "eviction"
	default:
		return fmt.Sprintf("unknown(%d)", int(k))
	}
}

// ChurnEvent is one membership change on the job's absolute timeline.
type ChurnEvent struct {
	Kind ChurnKind
	// At is the absolute virtual time the event is announced: when an
	// arrival's nodes become available, or when an eviction notice
	// lands (the node itself leaves at At+Notice).
	At sim.Time
	// Count is how many nodes an Arrival adds (>= 1).
	Count int
	// Node selects the Eviction victim; the supervisor reduces it
	// modulo the live node count at execution time, so compiled plans
	// stay valid as the cluster resizes.
	Node int
	// Notice is the Eviction's warning window. A notice long enough to
	// reach the job's next checkpointable consistency point turns the
	// eviction into a zero-rework drain; a shorter one degrades into a
	// crash.
	Notice sim.Time
}

// ChurnPlan is a deterministic membership schedule. The zero value
// changes nothing.
type ChurnPlan struct {
	// Seed records the generator seed a sampled plan was built from
	// (zero for hand-written plans); carried for provenance only.
	Seed uint64
	// Events fire in order; times are absolute virtual time from the
	// original job start and must be non-decreasing.
	Events []ChurnEvent
}

// Validate checks event ordering and shapes.
func (p ChurnPlan) Validate() error {
	var last sim.Time
	for i, ev := range p.Events {
		if ev.At < last {
			return fmt.Errorf("ft: churn event %d at %v precedes event %d at %v", i, ev.At, i-1, last)
		}
		last = ev.At
		switch ev.Kind {
		case Arrival:
			if ev.Count < 1 {
				return fmt.Errorf("ft: churn event %d: arrival of %d nodes", i, ev.Count)
			}
		case Eviction:
			if ev.Notice < 0 {
				return fmt.Errorf("ft: churn event %d: negative notice %v", i, ev.Notice)
			}
		default:
			return fmt.Errorf("ft: churn event %d: unknown kind %v", i, ev.Kind)
		}
	}
	return nil
}

// ChurnSpec declaratively describes a churn regime; Compile samples it
// into a concrete plan. The spec is what scenario files carry — small,
// validated, and seeded — while the plan is what the supervisor
// executes.
type ChurnSpec struct {
	// Seed drives the Poisson samplers; the same spec always compiles
	// to the same plan.
	Seed uint64
	// ArrivalEvery is the mean gap between single-node arrivals
	// (0 disables arrivals).
	ArrivalEvery sim.Time
	// EvictionEvery is the mean gap between evictions (0 disables).
	EvictionEvery sim.Time
	// Notice is the warning window every sampled eviction carries.
	Notice sim.Time
	// Horizon bounds sampling; events land strictly before it.
	Horizon sim.Time
	// RollingEvery, when positive, adds a deterministic rolling
	// restart on top of the sampled churn: starting at RollingEvery,
	// every RollingEvery one node in turn is evicted with Notice and
	// immediately replaced by an arrival — the kernel-upgrade walk
	// across the fleet.
	RollingEvery sim.Time
	// RollingNodes bounds how many rolling steps are generated
	// (default: one full walk over the compile-time node count).
	RollingNodes int
	// MaxEvents bounds the compiled plan (default 64).
	MaxEvents int
}

// Enabled reports whether the spec describes any churn at all.
func (s ChurnSpec) Enabled() bool {
	return s.ArrivalEvery > 0 || s.EvictionEvery > 0 || s.RollingEvery > 0
}

// Validate rejects inconsistent specs.
func (s ChurnSpec) Validate() error {
	if !s.Enabled() {
		return nil
	}
	if s.Horizon <= 0 {
		return fmt.Errorf("ft: churn spec needs a positive horizon")
	}
	if s.ArrivalEvery < 0 || s.EvictionEvery < 0 || s.RollingEvery < 0 {
		return fmt.Errorf("ft: churn spec rates must be non-negative")
	}
	if s.Notice < 0 {
		return fmt.Errorf("ft: churn spec notice must be non-negative")
	}
	if s.MaxEvents < 0 {
		return fmt.Errorf("ft: churn spec max events must be non-negative")
	}
	return nil
}

// Compile samples the spec into a concrete plan for a job starting on
// nodes nodes. Pure: the seeded generators live and die here, so the
// same (spec, nodes) yields the same plan under any sweep parallelism.
func (s ChurnSpec) Compile(nodes int) ChurnPlan {
	p := ChurnPlan{Seed: s.Seed}
	if !s.Enabled() || s.Horizon <= 0 || nodes <= 0 {
		return p
	}
	// Independent sub-streams per process, forked from the spec seed,
	// so enabling one process never reshuffles another.
	rng := sim.NewRNG(s.Seed)
	sample := func(r *sim.RNG, every sim.Time, emit func(t sim.Time)) {
		if every <= 0 {
			return
		}
		t := sim.Time(0)
		for {
			gap := sim.Time(-math.Log(1-r.Float64()) * float64(every))
			if gap < 1 {
				gap = 1
			}
			t += gap
			if t >= s.Horizon || t < 0 {
				return
			}
			emit(t)
		}
	}
	sample(rng.Fork(1), s.ArrivalEvery, func(t sim.Time) {
		p.Events = append(p.Events, ChurnEvent{Kind: Arrival, At: t, Count: 1})
	})
	evrng := rng.Fork(2)
	sample(evrng, s.EvictionEvery, func(t sim.Time) {
		p.Events = append(p.Events, ChurnEvent{Kind: Eviction, At: t, Node: evrng.Intn(nodes), Notice: s.Notice})
	})
	if s.RollingEvery > 0 {
		steps := s.RollingNodes
		if steps <= 0 {
			steps = nodes
		}
		for i := 0; i < steps; i++ {
			at := s.RollingEvery * sim.Time(i+1)
			if at >= s.Horizon {
				break
			}
			p.Events = append(p.Events,
				ChurnEvent{Kind: Eviction, At: at, Node: i, Notice: s.Notice},
				ChurnEvent{Kind: Arrival, At: at, Count: 1})
		}
	}
	// Merge the streams into one timeline. The sort is stable and the
	// streams were appended in a fixed order, so ties break the same
	// way everywhere.
	sort.SliceStable(p.Events, func(a, b int) bool { return p.Events[a].At < p.Events[b].At })
	max := s.MaxEvents
	if max <= 0 {
		max = 64
	}
	if len(p.Events) > max {
		p.Events = p.Events[:max]
	}
	return p
}

// SpotPlan samples an eviction-only churn schedule: reclaims arrive as
// a Poisson process with mean gap every, each with the given notice,
// striking a uniformly chosen node. The spot-market regime.
func SpotPlan(seed uint64, nodes int, every, notice, horizon sim.Time) ChurnPlan {
	return ChurnSpec{Seed: seed, EvictionEvery: every, Notice: notice, Horizon: horizon}.Compile(nodes)
}

// RollingPlan builds the deterministic rolling-restart schedule: one
// node at a time is evicted with the given notice and immediately
// replaced, one step every gap, starting at start.
func RollingPlan(start, gap, notice sim.Time, nodes int) ChurnPlan {
	var p ChurnPlan
	for i := 0; i < nodes; i++ {
		at := start + gap*sim.Time(i)
		p.Events = append(p.Events,
			ChurnEvent{Kind: Eviction, At: at, Node: i, Notice: notice},
			ChurnEvent{Kind: Arrival, At: at, Count: 1})
	}
	return p
}
