package ft

import (
	"errors"
	"fmt"

	"provirt/internal/ampi"
	"provirt/internal/lb"
	"provirt/internal/machine"
	"provirt/internal/sim"
	"provirt/internal/trace"
)

// ElasticJob describes a supervised run on a cluster whose membership
// changes while the job executes: planned arrivals and evictions from
// a ChurnPlan, unplanned crashes from a fault Plan, and optionally an
// autoscaling controller that resizes the machine from measured
// utilization. The supervisor executes membership changes the way the
// runtime's malleability story says to (§2.1): drain the job through a
// checkpoint at a consistency point, reshape the machine, restart from
// the snapshot — so planned changes lose no work, while evictions
// whose notice is too short to reach a consistency point degrade into
// ordinary crashes.
type ElasticJob struct {
	// Config is the job configuration. Config.Checkpoint must be set:
	// drains and recoveries both restart from snapshots.
	Config ampi.Config
	// Program builds a fresh program per attempt (see Job.Program).
	Program func() *ampi.Program
	// Faults is the unplanned-crash schedule, absolute virtual time.
	Faults Plan
	// Churn is the planned membership schedule, absolute virtual time.
	Churn ChurnPlan
	// Recovery selects Spare/Shrink/Expand handling of unplanned
	// crashes (planned churn carries its own shape change).
	Recovery RecoveryMode
	// Autoscale, when set, attaches a target-utilization controller:
	// every AutoscaleEvery of job time the supervisor drains the job,
	// reads the ended attempt's PE utilization, and applies the
	// controller's resize decision before restarting.
	Autoscale *lb.Autoscaler
	// AutoscaleEvery is the control interval (required with Autoscale).
	AutoscaleEvery sim.Time
	// MaxRestarts bounds total restarts; <= 0 means DefaultMaxRestarts
	// (churn-heavy jobs may need more than the crash default).
	MaxRestarts int
}

// ResizeRecord describes one membership change the supervisor
// executed.
type ResizeRecord struct {
	// At is the absolute virtual time the change took effect (drain
	// completion, or the crash instant for a failed drain).
	At sim.Time
	// Kind is Arrival or Eviction; autoscale resizes report Arrival
	// when growing and Eviction when shrinking, with Auto set.
	Kind ChurnKind
	Auto bool
	// Delta is the node-count change; Nodes the count afterwards.
	Delta int
	Nodes int
	// Drained reports the zero-rework path: the job checkpointed ahead
	// of the change. Crashed reports an eviction whose notice was too
	// short, recovered like an ordinary crash.
	Drained bool
	Crashed bool
	// Rework is the virtual work the change threw away (zero when
	// drained).
	Rework sim.Time
}

// ElasticReport summarizes an elastic run.
type ElasticReport struct {
	// World is the attempt that ran to completion.
	World *ampi.World
	// Attempts counts worlds started (1 = no churn, no failures).
	Attempts int
	// Resizes has one record per membership change executed; Epochs is
	// len(Resizes).
	Resizes []ResizeRecord
	// Recoveries covers unplanned crashes only (see Report).
	Recoveries []RecoveryRecord
	// TotalTime sums virtual time across attempts — time-to-solution
	// including drains, lost work, and restarts.
	TotalTime sim.Time
	// NodeSeconds integrates cluster membership over the run: the cost
	// axis (node-hours = NodeSeconds / 3600s).
	NodeSeconds sim.Time
	// Checkpoints counts snapshots across attempts (drains included).
	Checkpoints int
}

// Epochs reports how many membership transitions the run executed.
func (r *ElasticReport) Epochs() int { return len(r.Resizes) }

// NodeHours is the run's cost in node-hours.
func (r *ElasticReport) NodeHours() float64 { return r.NodeSeconds.Hours() }

// ReworkNoticed sums rework across drained (noticed) membership
// changes — zero by construction, pinned by tests as the drain
// dividend.
func (r *ElasticReport) ReworkNoticed() sim.Time {
	var t sim.Time
	for _, rz := range r.Resizes {
		if rz.Drained {
			t += rz.Rework
		}
	}
	return t
}

// ReworkForced sums rework across membership changes that went the
// crash path (notice too short) plus unplanned crash recoveries.
func (r *ElasticReport) ReworkForced() sim.Time {
	var t sim.Time
	for _, rz := range r.Resizes {
		if rz.Crashed {
			t += rz.Rework
		}
	}
	for _, rec := range r.Recoveries {
		t += rec.Rework
	}
	return t
}

// teeTracer fans one event stream out to two tracers — the caller's
// and the autoscaler's profile recorder.
type teeTracer struct{ a, b trace.Tracer }

func (t teeTracer) Emit(ev trace.Event) { t.a.Emit(ev); t.b.Emit(ev) }

// RunElastic drives an elastic job to completion. With no churn, no
// faults, and no autoscaler it adds nothing: the world is built and
// run exactly as a bare caller would, so churn-free elastic runs stay
// bit-identical to unsupervised ones.
func RunElastic(job ElasticJob) (*ElasticReport, error) {
	if job.Program == nil {
		return nil, errors.New("ft: elastic job needs a program factory")
	}
	if err := job.Churn.Validate(); err != nil {
		return nil, err
	}
	if job.Autoscale != nil {
		if err := job.Autoscale.Validate(); err != nil {
			return nil, err
		}
		if job.AutoscaleEvery <= 0 {
			return nil, errors.New("ft: autoscaling needs a positive control interval")
		}
	}
	elastic := len(job.Churn.Events) > 0 || job.Autoscale != nil
	if elastic {
		if p := job.Config.Checkpoint; p == nil || p.Interval <= 0 {
			return nil, errors.New("ft: elastic membership changes need a checkpoint policy to drain through")
		}
	}
	cfg := job.Config
	maxRestarts := job.MaxRestarts
	if maxRestarts <= 0 {
		maxRestarts = DefaultMaxRestarts
	}
	rep := &ElasticReport{}

	// Membership spans for node-second accounting: one (joined,
	// retired) pair per node ever used, retired < 0 while live.
	spans := make([][2]sim.Time, cfg.Machine.Nodes)
	open := make([]int, cfg.Machine.Nodes) // current node id -> span index
	for i := range spans {
		spans[i] = [2]sim.Time{0, -1}
		open[i] = i
	}
	closeSpan := func(node int, at sim.Time) {
		spans[open[node]][1] = at
		open = append(open[:node], open[node+1:]...)
	}
	openSpans := func(count int, at sim.Time) {
		for i := 0; i < count; i++ {
			spans = append(spans, [2]sim.Time{at, -1})
			open = append(open, len(spans)-1)
		}
	}

	var now sim.Time // absolute virtual time consumed by ended attempts
	var lastCk *ampi.Checkpoint
	var pending *RecoveryRecord
	churnIdx := 0
	nextAuto := job.AutoscaleEvery
	var lastUtil float64
	finish := func(w *ampi.World) *ElasticReport {
		rep.World = w
		rep.NodeSeconds = machine.NodeSecondsOf(spans, rep.TotalTime)
		metrics.nodeSeconds.Set(int64(rep.NodeSeconds))
		return rep
	}

	for restarts := 0; ; restarts++ {
		attemptCfg := cfg
		var rec *trace.Recorder
		if job.Autoscale != nil {
			rec = trace.NewRecorder(trace.KindSetup, trace.KindExec, trace.KindSwitch, trace.KindIdle)
			if attemptCfg.Tracer != nil {
				attemptCfg.Tracer = teeTracer{attemptCfg.Tracer, rec}
			} else {
				attemptCfg.Tracer = rec
			}
		}
		var w *ampi.World
		var err error
		if lastCk == nil {
			w, err = ampi.NewWorld(attemptCfg, job.Program())
		} else {
			w, err = ampi.NewWorldFromCheckpoint(attemptCfg, job.Program(), lastCk)
		}
		if err != nil {
			return rep, err
		}
		if err := job.Faults.Shift(now).Arm(w); err != nil {
			return rep, err
		}

		// Arm the next planned membership change, if any: the drain
		// request at its announce instant, and for evictions the node
		// departure at announce+notice — whichever the job reaches
		// first decides drain vs crash.
		type armed struct {
			ev     ChurnEvent
			rel    sim.Time // announce instant, relative to this attempt
			victim int
			leave  sim.Time // departure instant, relative to this attempt
		}
		var arm *armed
		if churnIdx < len(job.Churn.Events) {
			ev := job.Churn.Events[churnIdx]
			rel := ev.At - now
			if rel < 1 {
				rel = 1 // overdue (announced during an earlier attempt): apply asap
			}
			a := &armed{ev: ev, rel: rel, victim: -1}
			if ev.Kind == Eviction {
				a.victim = ev.Node % cfg.Machine.Nodes
				if a.victim < 0 {
					a.victim += cfg.Machine.Nodes
				}
				a.leave = rel + ev.Notice
				if err := w.ScheduleNodeFailure(a.victim, a.leave); err != nil {
					return rep, err
				}
			}
			if err := w.ScheduleReconfigure(rel); err != nil {
				return rep, err
			}
			arm = a
		}
		// Autoscale control point: drain at the next control instant if
		// it precedes the armed churn (both may be armed; first wins).
		if job.Autoscale != nil {
			rel := nextAuto - now
			if rel < 1 {
				rel = 1
			}
			if err := w.ScheduleReconfigure(rel); err != nil {
				return rep, err
			}
		}

		runErr := w.Run()
		rep.Attempts++
		rep.Checkpoints += w.Checkpoints
		if pending != nil {
			pending.Downtime = w.RestoreDone
			if pending.Downtime == 0 {
				pending.Downtime = w.SetupDone
			}
			pending.RestoredBytes = w.RestoredBytes
			metrics.restoredBytes.Add(pending.RestoredBytes)
			pending = nil
		}
		if rec != nil {
			lastUtil = lb.Utilization(trace.BuildProfile(rec.Events()))
		}
		if runErr == nil {
			rep.TotalTime += w.Time()
			return finish(w), nil
		}

		var rc *ampi.Reconfigure
		var nf *ampi.NodeFailure
		switch {
		case errors.As(runErr, &rc):
			// Graceful drain: zero rework by construction. Decide what
			// the drain was for — the armed churn event, or an
			// autoscale control point (whichever instant came first).
			elapsed := rc.At
			rep.TotalTime += elapsed
			abs := now + elapsed
			if ck := w.LastCheckpoint(); ck != nil {
				lastCk = ck
			}
			if restarts >= maxRestarts {
				return rep, fmt.Errorf("ft: elastic job exceeded %d restarts", maxRestarts)
			}
			// Both a churn event and an autoscale control point may have
			// requested drains; Requested identifies whichever fired
			// first (ties go to the churn event — the drains are
			// identical and its change is due anyway).
			isChurn := arm != nil && rc.Requested == arm.rel
			if isChurn {
				ev := arm.ev
				rz := ResizeRecord{At: abs, Kind: ev.Kind, Drained: true}
				switch ev.Kind {
				case Arrival:
					placement, perr := expandPlacement(w, cfg.Machine, ev.Count)
					if perr != nil {
						return rep, fmt.Errorf("ft: arrival: %w", perr)
					}
					cfg.Machine.Nodes += ev.Count
					cfg.Placement = placement
					rz.Delta = ev.Count
					openSpans(ev.Count, abs)
				case Eviction:
					if cfg.Machine.Nodes <= 1 {
						return rep, errors.New("ft: eviction would leave no nodes")
					}
					placement, perr := shrinkPlacement(w, cfg.Machine, arm.victim)
					if perr != nil {
						return rep, fmt.Errorf("ft: eviction: %w", perr)
					}
					cfg.Machine.Nodes--
					cfg.Placement = placement
					rz.Delta = -1
					// The node is billed until its reclaim deadline,
					// even though the job vacated it at the drain.
					closeSpan(arm.victim, now+arm.leave)
					if lastCk != nil {
						// Its in-memory snapshot copies leave with it.
						lastCk.LostNode = arm.victim
					}
				}
				rz.Nodes = cfg.Machine.Nodes
				rep.Resizes = append(rep.Resizes, rz)
				churnIdx++
				metrics.epochs.Inc()
				metrics.drains.Inc()
			} else {
				// Autoscale control point: apply the controller's
				// decision from the ended attempt's utilization.
				delta := job.Autoscale.Decide(lastUtil, cfg.Machine.Nodes)
				nextAuto += job.AutoscaleEvery
				if delta < -1 {
					// One departure per control point: the shrink
					// placement is computed against the live world, so
					// multi-node shrinks land over successive drains.
					delta = -1
				}
				if delta != 0 {
					rz := ResizeRecord{At: abs, Auto: true, Drained: true, Delta: delta}
					if delta > 0 {
						rz.Kind = Arrival
						placement, perr := expandPlacement(w, cfg.Machine, delta)
						if perr != nil {
							return rep, fmt.Errorf("ft: autoscale up: %w", perr)
						}
						cfg.Machine.Nodes += delta
						cfg.Placement = placement
						openSpans(delta, abs)
					} else if cfg.Machine.Nodes > 1 {
						rz.Kind = Eviction
						victim := cfg.Machine.Nodes - 1
						placement, perr := shrinkPlacement(w, cfg.Machine, victim)
						if perr != nil {
							return rep, fmt.Errorf("ft: autoscale down: %w", perr)
						}
						cfg.Machine.Nodes--
						cfg.Placement = placement
						closeSpan(victim, abs)
						if lastCk != nil {
							lastCk.LostNode = victim
						}
					} else {
						delta = 0
					}
					if delta != 0 {
						rz.Nodes = cfg.Machine.Nodes
						rz.Delta = delta
						rep.Resizes = append(rep.Resizes, rz)
						metrics.epochs.Inc()
					}
				}
				metrics.drains.Inc()
			}
			now = abs

		case errors.As(runErr, &nf):
			elapsed := w.Time()
			if nf.At > elapsed {
				elapsed = nf.At
			}
			rep.TotalTime += elapsed
			abs := now + nf.At
			if restarts >= maxRestarts {
				return rep, fmt.Errorf("ft: job still failing after %d restart(s): %w", restarts, runErr)
			}
			if ck := w.LastCheckpoint(); ck != nil {
				lastCk = ck
			}
			var rework sim.Time
			if lastCk != nil {
				rework = nf.At - lastCk.Taken
				if rework < 0 {
					rework = 0
				}
			} else {
				rework = nf.At
			}
			planned := arm != nil && arm.victim == nf.Node && arm.leave == nf.At
			if planned {
				// The armed eviction's notice was too short: the node
				// left before the job reached a consistency point, so
				// the change recovers like a crash, rework included.
				if cfg.Machine.Nodes <= 1 {
					return rep, errors.New("ft: eviction would leave no nodes")
				}
				placement, perr := shrinkPlacement(w, cfg.Machine, nf.Node)
				if perr != nil {
					return rep, fmt.Errorf("ft: eviction: %w", perr)
				}
				cfg.Machine.Nodes--
				cfg.Placement = placement
				closeSpan(nf.Node, abs)
				rep.Resizes = append(rep.Resizes, ResizeRecord{
					At: abs, Kind: Eviction, Delta: -1, Nodes: cfg.Machine.Nodes,
					Crashed: true, Rework: rework,
				})
				churnIdx++
				metrics.epochs.Inc()
			} else {
				// Unplanned crash: recover per the job's mode.
				recRec := RecoveryRecord{Attempt: rep.Attempts, Node: nf.Node, CrashAt: nf.At, Rework: rework}
				switch job.Recovery {
				case Shrink:
					if cfg.Machine.Nodes <= 1 {
						return rep, fmt.Errorf("ft: cannot shrink below one node: %w", runErr)
					}
					placement, perr := shrinkPlacement(w, cfg.Machine, nf.Node)
					if perr != nil {
						return rep, fmt.Errorf("ft: shrink recovery: %w", perr)
					}
					cfg.Machine.Nodes--
					cfg.Placement = placement
					recRec.Shrunk = true
					closeSpan(nf.Node, abs)
				case Expand:
					placement, perr := expandPlacement(w, cfg.Machine, 1)
					if perr != nil {
						return rep, fmt.Errorf("ft: expand recovery: %w", perr)
					}
					cfg.Machine.Nodes++
					cfg.Placement = placement
					recRec.Expanded = true
					openSpans(1, abs)
				}
				metrics.recoveries.Inc()
				if recRec.Shrunk {
					metrics.shrinks.Inc()
				}
				rep.Recoveries = append(rep.Recoveries, recRec)
				pending = &rep.Recoveries[len(rep.Recoveries)-1]
			}
			if lastCk != nil {
				lastCk.LostNode = nf.Node
			}
			metrics.reworkNS.Add(uint64(rework))
			now = abs

		default:
			if lastCk != nil && errors.Is(runErr, ampi.ErrSnapshotLost) {
				// Back-to-back departures outran the checkpoint cadence:
				// the in-memory snapshot's last copies left with a node
				// before a fresh snapshot replaced them. Nothing to
				// restore from — restart the job from the beginning on
				// the current (already reshaped) machine. The full-job
				// rework lands in TotalTime.
				elapsed := w.Time()
				rep.TotalTime += elapsed
				if restarts >= maxRestarts {
					return rep, fmt.Errorf("ft: elastic job exceeded %d restarts: %w", maxRestarts, runErr)
				}
				now += elapsed
				lastCk = nil
				metrics.reworkNS.Add(uint64(elapsed))
				continue
			}
			rep.TotalTime += w.Time()
			return rep, runErr
		}
	}
}
