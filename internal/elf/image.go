// Package elf models the pieces of a Position Independent Executable that
// the paper's privatization methods manipulate: code and data segments, a
// Global Offset Table, a TLS initialization template, global/static
// variables, functions, static constructors, and relocations.
//
// The model is synthetic — no real object files are parsed — but it is
// structured so that each privatization method's mechanism and failure
// modes fall out of the structure rather than being special-cased:
// Swapglobals can only redirect what is reachable through the GOT (so
// static variables stay shared), PIE instances place the data segment
// directly after the code segment (so duplicating both privatizes all
// globals), and static constructors run at load time and may stash
// pointers to code or heap in the data segment (so PIEglobals must scan
// and rebase them).
package elf

import (
	"fmt"
	"sort"
	"sync/atomic"
)

// StorageClass classifies a program variable the way the paper's §2.2
// taxonomy does.
type StorageClass int

const (
	// ClassGlobal is a mutable global variable with external linkage
	// (reachable through the GOT in an ELF shared object).
	ClassGlobal StorageClass = iota
	// ClassStatic is a mutable function- or file-scope static variable.
	// It is addressed PC-relative and never appears in the GOT — the
	// reason Swapglobals cannot privatize it.
	ClassStatic
	// ClassConst is a read-only or write-once variable; safe to share
	// between virtual ranks (like num_ranks in the paper's Fig. 2).
	ClassConst
)

func (c StorageClass) String() string {
	switch c {
	case ClassGlobal:
		return "global"
	case ClassStatic:
		return "static"
	case ClassConst:
		return "const"
	default:
		return fmt.Sprintf("StorageClass(%d)", int(c))
	}
}

// Level is a variable's privatization level under hierarchical local
// storage (MPC's HLS extension, §2.3.5): data may be private per
// user-level thread, shared among the ranks of one core, or shared
// node-wide, minimizing memory overhead for data that is logically
// shared at a coarser granularity (lookup tables, read-mostly model
// state).
type Level int

const (
	// LevelULT is full per-rank privatization (the default).
	LevelULT Level = iota
	// LevelCore shares the variable among ranks co-scheduled on one
	// core (PE).
	LevelCore
	// LevelNode shares the variable among all ranks in the process
	// (one process per node in the deployments HLS targets).
	LevelNode
)

func (l Level) String() string {
	switch l {
	case LevelULT:
		return "ult"
	case LevelCore:
		return "core"
	case LevelNode:
		return "node"
	default:
		return fmt.Sprintf("Level(%d)", int(l))
	}
}

// Var declares one program variable. Every variable occupies one 8-byte
// cell in the data segment at offset 8*Index.
type Var struct {
	Name  string
	Class StorageClass
	Init  uint64
	// Level is the hierarchical-local-storage privatization level,
	// honored only by HLS-capable methods; everything else privatizes
	// per rank.
	Level Level
	// Tagged reports whether the programmer annotated the declaration
	// thread_local / __thread / !$omp threadprivate. TLSglobals only
	// privatizes tagged variables — the source of its "Mediocre"
	// automation rating in Table 1. The compiler-automated
	// -fmpc-privatize method ignores this flag and treats every
	// mutable variable as tagged.
	Tagged bool
	Index  int
}

// Mutable reports whether the variable is unsafe to share across ranks.
func (v *Var) Mutable() bool { return v.Class != ClassConst }

// Func declares one function in the code segment.
type Func struct {
	Name   string
	Offset uint64 // byte offset within the code segment
	Size   uint64 // footprint in bytes, used by the i-cache model
	Index  int
}

// CtorWrite is one store performed by a static constructor into the data
// segment.
type CtorWrite struct {
	// VarName is the destination cell.
	VarName string
	// Value is the raw value stored, used when neither pointer flag is
	// set.
	Value uint64
	// PointsToFunc, if non-empty, makes the store a function pointer to
	// the named function (its value depends on the code segment base —
	// the PIEglobals fixup hazard of §3.3, e.g. vtable slots).
	PointsToFunc string
	// PointsToAlloc, if >= 0, makes the store a pointer to the ctor
	// heap allocation with that ordinal. Use the ValueWrite /
	// FuncPtrWrite / AllocPtrWrite constructors rather than struct
	// literals: a zero PointsToAlloc means "alloc 0", not "unset".
	PointsToAlloc int
}

// ValueWrite returns a CtorWrite storing a plain value.
func ValueWrite(varName string, value uint64) CtorWrite {
	return CtorWrite{VarName: varName, Value: value, PointsToAlloc: -1}
}

// FuncPtrWrite returns a CtorWrite storing a function pointer.
func FuncPtrWrite(varName, funcName string) CtorWrite {
	return CtorWrite{VarName: varName, PointsToFunc: funcName, PointsToAlloc: -1}
}

// AllocPtrWrite returns a CtorWrite storing a pointer to the ctor's
// alloc-th heap allocation.
func AllocPtrWrite(varName string, alloc int) CtorWrite {
	return CtorWrite{VarName: varName, PointsToAlloc: alloc}
}

// CtorAlloc is one heap allocation performed by a static constructor at
// load time (e.g. a std::string or std::vector member of a global C++
// object). Words may themselves contain pointers into the code segment
// (vtables) which PIEglobals must rebase per rank.
type CtorAlloc struct {
	Size uint64
	// FuncPtrSlots lists word offsets within the allocation that hold
	// function pointers; the value stored is the address of Func with
	// the matching ordinal index modulo the function count.
	FuncPtrSlots []int
}

// Ctor is one static constructor.
type Ctor struct {
	Allocs []CtorAlloc
	Writes []CtorWrite
}

// Image is a synthetic program binary (built as a PIE shared object).
type Image struct {
	Name string
	// Language is the source language ("c", "c++", "fortran"); some
	// privatization methods are language-specific (Photran).
	Language string
	// SharedDeps is the number of dynamic shared-object dependencies
	// beyond system libraries. FSglobals does not support programs
	// with shared-object dependencies (§3.2).
	SharedDeps int
	// CodeSize and DataSize are the segment footprints in bytes. They
	// include bulk beyond the declared functions and variables so
	// workloads can model real binaries (ADCIRC's 14 MB code segment,
	// Jacobi's 3 MB).
	CodeSize uint64
	DataSize uint64
	// RODataSize is the portion of DataSize that is read-only bulk
	// (.rodata-like lookup tables and literals lumped into the data
	// segment). Copy-on-write sharing keeps these bytes on shared pages
	// per rank; zero means only const variable cells are read-only.
	RODataSize uint64

	Vars  []*Var
	Funcs []*Func
	Ctors []Ctor

	// Relocations is the number of dynamic relocation entries the
	// linker processes per load; it scales dlopen/dlmopen cost.
	Relocations int

	byName   map[string]*Var
	fnByName map[string]*Func

	// varLookups counts VarByName calls — the symbol-table probes a
	// program performs. Workload inner loops are expected to resolve a
	// handle once and reuse it, so tests assert this stays bounded by
	// setup work rather than scaling with accesses. Atomic because
	// harness sweeps may run worlds sharing an image across goroutines.
	varLookups atomic.Int64

	// layoutState memoizes the shared instance-layout metadata (see
	// layout.go).
	layoutState
}

// VarByName returns the declared variable or nil.
func (img *Image) VarByName(name string) *Var {
	img.varLookups.Add(1)
	return img.byName[name]
}

// VarLookups reports how many VarByName probes the image has served.
func (img *Image) VarLookups() int64 { return img.varLookups.Load() }

// FuncByName returns the declared function or nil.
func (img *Image) FuncByName(name string) *Func { return img.fnByName[name] }

// MutableVars returns the variables requiring privatization, in index
// order.
func (img *Image) MutableVars() []*Var {
	var out []*Var
	for _, v := range img.Vars {
		if v.Mutable() {
			out = append(out, v)
		}
	}
	return out
}

// TaggedVars returns the variables annotated for TLS privatization.
func (img *Image) TaggedVars() []*Var {
	var out []*Var
	for _, v := range img.Vars {
		if v.Tagged && v.Mutable() {
			out = append(out, v)
		}
	}
	return out
}

// DataWords returns the number of 8-byte cells in the data segment.
func (img *Image) DataWords() int { return int(img.DataSize / 8) }

// TotalSegmentBytes is the footprint one full PIE duplication costs.
func (img *Image) TotalSegmentBytes() uint64 { return img.CodeSize + img.DataSize }

// Builder assembles an Image. The zero value is not usable; call
// NewBuilder.
type Builder struct {
	img     *Image
	codeOff uint64
	err     error
}

// NewBuilder starts an image named name.
func NewBuilder(name string) *Builder {
	return &Builder{img: &Image{
		Name:     name,
		byName:   make(map[string]*Var),
		fnByName: make(map[string]*Func),
	}}
}

func (b *Builder) addVar(name string, class StorageClass, init uint64, tagged bool) *Builder {
	if b.err != nil {
		return b
	}
	if _, dup := b.img.byName[name]; dup {
		b.err = fmt.Errorf("elf: duplicate variable %q", name)
		return b
	}
	v := &Var{Name: name, Class: class, Init: init, Tagged: tagged, Index: len(b.img.Vars)}
	b.img.Vars = append(b.img.Vars, v)
	b.img.byName[name] = v
	return b
}

// Global declares a mutable global variable.
func (b *Builder) Global(name string, init uint64) *Builder {
	return b.addVar(name, ClassGlobal, init, false)
}

// TaggedGlobal declares a mutable global annotated thread_local.
func (b *Builder) TaggedGlobal(name string, init uint64) *Builder {
	return b.addVar(name, ClassGlobal, init, true)
}

// Static declares a mutable static variable.
func (b *Builder) Static(name string, init uint64) *Builder {
	return b.addVar(name, ClassStatic, init, false)
}

// TaggedStatic declares a mutable static annotated thread_local.
func (b *Builder) TaggedStatic(name string, init uint64) *Builder {
	return b.addVar(name, ClassStatic, init, true)
}

// Const declares a write-once/read-only variable (safe to share).
func (b *Builder) Const(name string, init uint64) *Builder {
	return b.addVar(name, ClassConst, init, false)
}

// Level annotates the most recently declared variable with an HLS
// privatization level.
func (b *Builder) Level(l Level) *Builder {
	if b.err != nil {
		return b
	}
	if len(b.img.Vars) == 0 {
		b.err = fmt.Errorf("elf: Level with no preceding variable")
		return b
	}
	b.img.Vars[len(b.img.Vars)-1].Level = l
	return b
}

// Func declares a function of the given byte size.
func (b *Builder) Func(name string, size uint64) *Builder {
	if b.err != nil {
		return b
	}
	if _, dup := b.img.fnByName[name]; dup {
		b.err = fmt.Errorf("elf: duplicate function %q", name)
		return b
	}
	f := &Func{Name: name, Offset: b.codeOff, Size: size, Index: len(b.img.Funcs)}
	b.codeOff += size
	b.img.Funcs = append(b.img.Funcs, f)
	b.img.fnByName[name] = f
	return b
}

// Ctor records a static constructor.
func (b *Builder) Ctor(c Ctor) *Builder {
	if b.err != nil {
		return b
	}
	b.img.Ctors = append(b.img.Ctors, c)
	return b
}

// CodeBulk pads the code segment to at least size bytes.
func (b *Builder) CodeBulk(size uint64) *Builder {
	if b.err == nil && size > b.img.CodeSize {
		b.img.CodeSize = size
	}
	return b
}

// DataBulk pads the data segment to at least size bytes.
func (b *Builder) DataBulk(size uint64) *Builder {
	if b.err == nil && size > b.img.DataSize {
		b.img.DataSize = size
	}
	return b
}

// RODataBulk declares that size bytes of the data segment are read-only
// bulk (lookup tables, literals). It is an annotation consumed by
// copy-on-write sharing; it does not grow the segment beyond DataBulk.
func (b *Builder) RODataBulk(size uint64) *Builder {
	if b.err == nil && size > b.img.RODataSize {
		b.img.RODataSize = size
	}
	return b
}

// Language records the source language ("c", "c++", "fortran").
func (b *Builder) Language(lang string) *Builder {
	if b.err == nil {
		b.img.Language = lang
	}
	return b
}

// SharedDeps records dynamic shared-object dependencies beyond system
// libraries.
func (b *Builder) SharedDeps(n int) *Builder {
	if b.err == nil {
		b.img.SharedDeps = n
	}
	return b
}

// Relocations sets an explicit dynamic relocation count; if unset, one
// per variable plus one per function is assumed.
func (b *Builder) Relocations(n int) *Builder {
	if b.err == nil {
		b.img.Relocations = n
	}
	return b
}

// Build finalizes and validates the image.
func (b *Builder) Build() (*Image, error) {
	if b.err != nil {
		return nil, b.err
	}
	img := b.img
	if img.Language == "" {
		img.Language = "c"
	}
	if img.CodeSize < b.codeOff {
		img.CodeSize = b.codeOff
	}
	if img.CodeSize == 0 {
		img.CodeSize = 4096
	}
	minData := uint64(len(img.Vars)) * 8
	if img.DataSize < minData {
		img.DataSize = minData
	}
	if img.DataSize == 0 {
		img.DataSize = 4096
	}
	// Round data size to whole words.
	img.DataSize = (img.DataSize + 7) &^ 7
	if img.Relocations == 0 {
		img.Relocations = len(img.Vars) + len(img.Funcs) + 16
	}
	for _, c := range img.Ctors {
		for _, w := range c.Writes {
			if img.byName[w.VarName] == nil {
				return nil, fmt.Errorf("elf: ctor writes unknown variable %q", w.VarName)
			}
			if w.PointsToFunc != "" && img.fnByName[w.PointsToFunc] == nil {
				return nil, fmt.Errorf("elf: ctor stores pointer to unknown function %q", w.PointsToFunc)
			}
			if w.PointsToAlloc >= len(c.Allocs) {
				return nil, fmt.Errorf("elf: ctor write references alloc %d of %d", w.PointsToAlloc, len(c.Allocs))
			}
		}
	}
	// Deterministic order for name iteration users.
	sort.Slice(img.Vars, func(i, j int) bool { return img.Vars[i].Index < img.Vars[j].Index })
	return img, nil
}

// MustBuild is Build for static program definitions that cannot fail.
func (b *Builder) MustBuild() *Image {
	img, err := b.Build()
	if err != nil {
		panic(err)
	}
	return img
}
