package elf

import (
	"strings"
	"testing"
	"testing/quick"
)

func testImage(t *testing.T) *Image {
	t.Helper()
	img, err := NewBuilder("prog").
		Global("g1", 10).
		Static("s1", 20).
		Const("c1", 30).
		TaggedGlobal("t1", 40).
		Func("main", 1024).
		Func("helper", 512).
		CodeBulk(1 << 20).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return img
}

func TestBuilderBasics(t *testing.T) {
	img := testImage(t)
	if img.VarByName("g1").Class != ClassGlobal {
		t.Error("g1 class wrong")
	}
	if img.VarByName("s1").Class != ClassStatic {
		t.Error("s1 class wrong")
	}
	if !img.VarByName("t1").Tagged {
		t.Error("t1 not tagged")
	}
	if img.VarByName("c1").Mutable() {
		t.Error("const reported mutable")
	}
	if len(img.MutableVars()) != 3 {
		t.Errorf("%d mutable vars, want 3", len(img.MutableVars()))
	}
	if len(img.TaggedVars()) != 1 {
		t.Errorf("%d tagged vars, want 1", len(img.TaggedVars()))
	}
	if img.FuncByName("helper").Offset != 1024 {
		t.Errorf("helper offset %d", img.FuncByName("helper").Offset)
	}
	if img.CodeSize != 1<<20 {
		t.Errorf("code size %d", img.CodeSize)
	}
	if img.Language != "c" {
		t.Errorf("default language %q", img.Language)
	}
}

func TestBuilderRejectsDuplicates(t *testing.T) {
	if _, err := NewBuilder("x").Global("a", 0).Static("a", 1).Build(); err == nil {
		t.Fatal("duplicate variable accepted")
	}
	if _, err := NewBuilder("x").Func("f", 8).Func("f", 8).Build(); err == nil {
		t.Fatal("duplicate function accepted")
	}
}

func TestBuilderValidatesCtors(t *testing.T) {
	_, err := NewBuilder("x").Global("g", 0).
		Ctor(Ctor{Writes: []CtorWrite{ValueWrite("missing", 1)}}).Build()
	if err == nil || !strings.Contains(err.Error(), "unknown variable") {
		t.Fatalf("ctor write to unknown variable: %v", err)
	}
	_, err = NewBuilder("x").Global("g", 0).
		Ctor(Ctor{Writes: []CtorWrite{FuncPtrWrite("g", "nofn")}}).Build()
	if err == nil || !strings.Contains(err.Error(), "unknown function") {
		t.Fatalf("ctor func-ptr to unknown function: %v", err)
	}
}

func TestInstanceInitialization(t *testing.T) {
	img := testImage(t)
	in, err := NewInstance(img, 0x10000, 0x200000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if in.Data[img.VarByName("g1").Index] != 10 {
		t.Error("g1 init wrong")
	}
	if in.Data[img.VarByName("c1").Index] != 30 {
		t.Error("c1 init wrong")
	}
	// GOT holds absolute addresses of external-linkage vars and funcs.
	got, ok := in.GOTEntryForVar(img.VarByName("g1"))
	if !ok || got != in.VarAddr(img.VarByName("g1")) {
		t.Errorf("GOT entry for g1 = %#x, want %#x", got, in.VarAddr(img.VarByName("g1")))
	}
	if _, ok := in.GOTEntryForVar(img.VarByName("s1")); ok {
		t.Error("static variable has a GOT entry")
	}
}

func TestInstanceFuncAddressing(t *testing.T) {
	img := testImage(t)
	in, _ := NewInstance(img, 0x40000, 0x900000, 0)
	main := img.FuncByName("main")
	addr := in.FuncAddr(main)
	if addr != 0x40000 {
		t.Errorf("main at %#x", addr)
	}
	off, err := in.FuncOffset(addr + 100)
	if err != nil || off != 100 {
		t.Errorf("FuncOffset = %d, %v", off, err)
	}
	if _, err := in.FuncOffset(0x39999); err == nil {
		t.Error("offset outside code accepted")
	}
	if f := in.FuncAt(addr + 1500); f == nil || f.Name != "helper" {
		t.Errorf("FuncAt(helper body) = %v", f)
	}
	if f := in.FuncAt(in.CodeBase + 900000); f != nil {
		t.Errorf("FuncAt(bulk) = %v, want nil", f)
	}
}

func TestSetGOTEntry(t *testing.T) {
	img := testImage(t)
	in, _ := NewInstance(img, 0x40000, 0x900000, 0)
	g1 := img.VarByName("g1")
	if err := in.SetGOTEntryForVar(g1, 0xabcd000); err != nil {
		t.Fatal(err)
	}
	got, _ := in.GOTEntryForVar(g1)
	if got != 0xabcd000 {
		t.Errorf("GOT entry %#x after swap", got)
	}
	if err := in.SetGOTEntryForVar(img.VarByName("s1"), 1); err == nil {
		t.Error("setting GOT entry for a static must fail")
	}
}

func TestRunCtors(t *testing.T) {
	img, err := NewBuilder("cpp").
		Language("c++").
		Global("obj_ptr", 0).
		Global("vfn_ptr", 0).
		Global("plain", 0).
		Func("main", 256).
		Func("virtual_method", 128).
		Ctor(Ctor{
			Allocs: []CtorAlloc{{Size: 64, FuncPtrSlots: []int{1}}},
			Writes: []CtorWrite{
				AllocPtrWrite("obj_ptr", 0),
				FuncPtrWrite("vfn_ptr", "virtual_method"),
				ValueWrite("plain", 77),
			},
		}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	in, _ := NewInstance(img, 0x100000, 0x700000, 0)
	next := uint64(0x9000000)
	n, err := in.RunCtors(func(size uint64) uint64 {
		a := next
		next += size
		return a
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("%d ctor allocs", n)
	}
	objPtr := in.Data[img.VarByName("obj_ptr").Index]
	if objPtr != 0x9000000 {
		t.Errorf("obj_ptr = %#x", objPtr)
	}
	obj := in.HeapObjAt(objPtr)
	if obj == nil {
		t.Fatal("heap object not recorded")
	}
	// Slot 1 holds a pointer to some function in this instance's code.
	if fp := obj.Words[1]; !in.ContainsCode(fp) {
		t.Errorf("vtable slot %#x outside code", fp)
	}
	if in.Data[img.VarByName("vfn_ptr").Index] != in.FuncAddr(img.FuncByName("virtual_method")) {
		t.Error("function-pointer write wrong")
	}
	if in.Data[img.VarByName("plain").Index] != 77 {
		t.Error("plain write wrong")
	}
}

func TestDataSegmentAccommodatesGOT(t *testing.T) {
	// Even with no DataBulk, the instance's data array must hold all
	// variable cells plus GOT slots.
	img, _ := NewBuilder("tiny").Global("a", 1).Func("f", 8).Build()
	in, err := NewInstance(img, 0x1000, 0x8000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(in.Data) < 1+2 { // one var cell + var GOT + func GOT
		t.Fatalf("data words %d too small", len(in.Data))
	}
}

func TestContainsBoundaries(t *testing.T) {
	img := testImage(t)
	in, _ := NewInstance(img, 0x40000, 0x900000, 0)
	if !in.ContainsCode(in.CodeBase) || in.ContainsCode(in.CodeBase+img.CodeSize) {
		t.Error("code boundary wrong")
	}
	if !in.ContainsData(in.DataBase) || in.ContainsData(in.DataBase+img.DataSize) {
		t.Error("data boundary wrong")
	}
}

// Property: for any variable set, instance initialization puts every
// declared init value at the declared index and GOT entries point at
// the matching cells.
func TestInstanceInitProperty(t *testing.T) {
	f := func(inits []uint64) bool {
		if len(inits) == 0 || len(inits) > 200 {
			return true
		}
		b := NewBuilder("p")
		for i, v := range inits {
			switch i % 3 {
			case 0:
				b.Global(name(i), v)
			case 1:
				b.Static(name(i), v)
			default:
				b.Const(name(i), v)
			}
		}
		img, err := b.Func("f", 64).Build()
		if err != nil {
			return false
		}
		in, err := NewInstance(img, 0x1000000, 0x2000000, 0)
		if err != nil {
			return false
		}
		for i, v := range inits {
			va := img.VarByName(name(i))
			if in.Data[va.Index] != v {
				return false
			}
			if got, ok := in.GOTEntryForVar(va); ok && got != in.VarAddr(va) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func name(i int) string {
	return "v" + string(rune('a'+i%26)) + string(rune('0'+(i/26)%10)) + string(rune('0'+i/260))
}
