package elf

import "fmt"

// HeapObj is a heap allocation made by a static constructor at load
// time, owned by a particular instance of the image.
type HeapObj struct {
	Addr  uint64
	Size  uint64
	Words []uint64
}

// Instance is one loaded copy of an Image, mapped at concrete segment
// base addresses with live storage. The data segment layout is:
//
//	word 0 .. nVars-1   variable cells (8 bytes each)
//	word nVars ..       Global Offset Table entries
//	remainder           .data/.bss bulk
//
// Keeping the GOT inside the data segment mirrors ELF (.got lives in the
// data area) and is what makes PIEglobals' pointer scan find and rebase
// GOT entries without special-casing them.
type Instance struct {
	Img *Image
	// Namespace is the link-map namespace index the instance was loaded
	// into (0 = base namespace; dlmopen copies get fresh ones).
	Namespace int
	CodeBase  uint64
	DataBase  uint64
	// Data holds the full data segment as 8-byte words.
	Data []uint64
	// HeapObjs are the static-constructor heap allocations belonging to
	// this instance.
	HeapObjs []*HeapObj
	// Migratable reports whether the segments were allocated through
	// Isomalloc (true only for PIEglobals copies).
	Migratable bool
}

// gotBase returns the word index where the GOT begins.
func (in *Instance) gotBase() int { return len(in.Img.Vars) }

// gotSlots returns how many GOT entries the image has: one per
// external-linkage variable plus one per function. The count comes from
// the image's shared Layout, computed once and reused by every
// instance.
func (in *Instance) gotSlots() int { return in.Img.Layout().GOTSlots }

// gotIndexOfVar returns the GOT slot ordinal for an external-linkage
// variable, or -1 for statics (which have no GOT entry — the Swapglobals
// limitation). O(1) via the image's shared Layout; the seed recomputed
// it with an O(vars) scan per call, O(vars²) per instantiation.
func (in *Instance) gotIndexOfVar(v *Var) int {
	return in.Img.Layout().VarSlot(v.Index)
}

// gotIndexOfFunc returns the GOT slot ordinal for a function.
func (in *Instance) gotIndexOfFunc(f *Func) int {
	return in.Img.Layout().ExternVars + f.Index
}

// NewInstance materializes an image at the given segment bases:
// variable cells take their initializers, and the GOT is populated with
// absolute addresses of this instance's cells and functions.
//
// Static constructors are NOT run here; the loader runs them (they
// execute at dlopen time with side effects the caller must account for).
func NewInstance(img *Image, codeBase, dataBase uint64, namespace int) (*Instance, error) {
	words := img.DataWords()
	need := len(img.Vars)
	in := &Instance{Img: img, Namespace: namespace, CodeBase: codeBase, DataBase: dataBase}
	need += in.gotSlots()
	if words < need {
		words = need
	}
	in.Data = make([]uint64, words)
	for _, v := range img.Vars {
		in.Data[v.Index] = v.Init
	}
	gb := in.gotBase()
	for _, v := range img.Vars {
		if slot := in.gotIndexOfVar(v); slot >= 0 {
			in.Data[gb+slot] = in.VarAddr(v)
		}
	}
	for _, f := range img.Funcs {
		in.Data[gb+in.gotIndexOfFunc(f)] = in.FuncAddr(f)
	}
	if codeBase == dataBase {
		return nil, fmt.Errorf("elf: code and data segments must not alias")
	}
	return in, nil
}

// VarAddr returns the absolute address of a variable's cell in this
// instance.
func (in *Instance) VarAddr(v *Var) uint64 { return in.DataBase + uint64(v.Index)*8 }

// FuncAddr returns the absolute address of a function in this instance.
func (in *Instance) FuncAddr(f *Func) uint64 { return in.CodeBase + f.Offset }

// FuncOffset returns the code-segment-relative offset of an absolute
// function address, or an error if the address is outside this
// instance's code segment. This is the translation AMPI performs for
// user-defined reduction operators under PIEglobals (§3.3).
func (in *Instance) FuncOffset(addr uint64) (uint64, error) {
	if addr < in.CodeBase || addr >= in.CodeBase+in.Img.CodeSize {
		return 0, fmt.Errorf("elf: address %#x outside code segment [%#x,%#x)",
			addr, in.CodeBase, in.CodeBase+in.Img.CodeSize)
	}
	return addr - in.CodeBase, nil
}

// FuncAt returns the function whose body spans the given absolute
// address, or nil.
func (in *Instance) FuncAt(addr uint64) *Func {
	if addr < in.CodeBase || addr >= in.CodeBase+in.Img.CodeSize {
		return nil
	}
	off := addr - in.CodeBase
	for _, f := range in.Img.Funcs {
		if off >= f.Offset && off < f.Offset+f.Size {
			return f
		}
	}
	return nil
}

// GOTEntryForVar returns the GOT slot contents for an external-linkage
// variable. Statics return ok=false.
func (in *Instance) GOTEntryForVar(v *Var) (addr uint64, ok bool) {
	slot := in.gotIndexOfVar(v)
	if slot < 0 {
		return 0, false
	}
	return in.Data[in.gotBase()+slot], true
}

// SetGOTEntryForVar overwrites the GOT slot for an external-linkage
// variable; Swapglobals uses this to point a rank's GOT at its private
// copy of the variable.
func (in *Instance) SetGOTEntryForVar(v *Var, addr uint64) error {
	slot := in.gotIndexOfVar(v)
	if slot < 0 {
		return fmt.Errorf("elf: %s has no GOT entry (static variable)", v.Name)
	}
	in.Data[in.gotBase()+slot] = addr
	return nil
}

// ContainsCode reports whether addr falls in this instance's code
// segment.
func (in *Instance) ContainsCode(addr uint64) bool {
	return addr >= in.CodeBase && addr < in.CodeBase+in.Img.CodeSize
}

// ContainsData reports whether addr falls in this instance's data
// segment.
func (in *Instance) ContainsData(addr uint64) bool {
	return addr >= in.DataBase && addr < in.DataBase+in.Img.DataSize
}

// HeapObjAt returns the ctor heap object containing addr, or nil.
func (in *Instance) HeapObjAt(addr uint64) *HeapObj {
	for _, h := range in.HeapObjs {
		if addr >= h.Addr && addr < h.Addr+h.Size {
			return h
		}
	}
	return nil
}

// RunCtors executes the image's static constructors against this
// instance: allocations come from alloc (which models malloc at load
// time) and stores land in the data segment. It returns the number of
// heap allocations performed.
func (in *Instance) RunCtors(alloc func(size uint64) uint64) (int, error) {
	count := 0
	for _, c := range in.Img.Ctors {
		objs := make([]*HeapObj, len(c.Allocs))
		for i, a := range c.Allocs {
			size := (a.Size + 7) &^ 7
			addr := alloc(size)
			obj := &HeapObj{Addr: addr, Size: size, Words: make([]uint64, size/8)}
			for _, slot := range a.FuncPtrSlots {
				if slot < 0 || slot >= len(obj.Words) {
					return count, fmt.Errorf("elf: ctor func-ptr slot %d outside alloc of %d words", slot, len(obj.Words))
				}
				if len(in.Img.Funcs) == 0 {
					return count, fmt.Errorf("elf: ctor func-ptr slot with no functions declared")
				}
				f := in.Img.Funcs[slot%len(in.Img.Funcs)]
				obj.Words[slot] = in.FuncAddr(f)
			}
			objs[i] = obj
			in.HeapObjs = append(in.HeapObjs, obj)
			count++
		}
		for _, w := range c.Writes {
			v := in.Img.VarByName(w.VarName)
			switch {
			case w.PointsToFunc != "":
				in.Data[v.Index] = in.FuncAddr(in.Img.FuncByName(w.PointsToFunc))
			case w.PointsToAlloc >= 0 && w.PointsToAlloc < len(objs):
				in.Data[v.Index] = objs[w.PointsToAlloc].Addr
			default:
				in.Data[v.Index] = w.Value
			}
		}
	}
	return count, nil
}
