package elf

import "sync"

// Layout is the per-image instance-layout metadata every loaded copy of
// an Image shares: GOT geometry, the variable-index -> GOT-slot table,
// and the read-only byte census. Before it existed, each Instance
// recomputed slot ordinals with an O(vars) scan per lookup — O(vars²)
// per instantiation, paid once per rank per method. At million-VP
// worlds the metadata is computed exactly once per image and shared by
// every rank's instance, which is the "share the invariant parts" half
// of the single-address-space model (μFork, Weaves): only the per-rank
// data delta is private.
type Layout struct {
	// GOTSlots is the number of GOT entries: one per external-linkage
	// variable plus one per function.
	GOTSlots int
	// ExternVars is the number of external-linkage (global/const)
	// variables; function GOT slots start at this ordinal.
	ExternVars int
	// varSlot maps Var.Index to its GOT slot ordinal, -1 for statics
	// (which have no GOT entry — the Swapglobals limitation).
	varSlot []int
	// ROBytes is the read-only portion of the data segment in bytes:
	// const variable cells plus any declared read-only bulk. These are
	// the bytes copy-on-write sharing keeps on shared pages per rank.
	ROBytes uint64
}

// Layout returns the image's shared instance-layout metadata, computed
// on first use. The result is immutable and safe to share across
// goroutines (harness sweeps instantiate one image from many worlds).
func (img *Image) Layout() *Layout {
	img.layoutOnce.Do(func() {
		l := &Layout{varSlot: make([]int, len(img.Vars))}
		for _, v := range img.Vars {
			if v.Class == ClassGlobal || v.Class == ClassConst {
				l.varSlot[v.Index] = l.ExternVars
				l.ExternVars++
			} else {
				l.varSlot[v.Index] = -1
			}
			if v.Class == ClassConst {
				l.ROBytes += 8
			}
		}
		l.GOTSlots = l.ExternVars + len(img.Funcs)
		ro := l.ROBytes + img.RODataSize
		// The census never exceeds the segment (a builder could declare
		// more RO bulk than data); clamp so sharing math can't underflow.
		if ro > img.DataSize {
			ro = img.DataSize
		}
		l.ROBytes = ro
		img.layout = l
	})
	return img.layout
}

// VarSlot returns the GOT slot ordinal for a variable index, -1 for
// statics.
func (l *Layout) VarSlot(index int) int { return l.varSlot[index] }

// layoutState is embedded in Image to keep the memo unexported.
type layoutState struct {
	layoutOnce sync.Once
	layout     *Layout
}
